package wire

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// replayInSim replays a det-run schedule through the lock-step simulator
// on a dup link and returns its result.
func replayInSim(t *testing.T, proto string, params registry.Params, input seq.Seq, res DetResult) sim.Result {
	t.Helper()
	spec, err := registry.Protocol(proto, params)
	if err != nil {
		t.Fatalf("Protocol: %v", err)
	}
	link, err := channel.NewLinkOfKind(channel.KindDup)
	if err != nil {
		t.Fatalf("NewLinkOfKind: %v", err)
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	simRes, err := sim.Run(w, sim.NewScripted(res.Script, sim.NewRoundRobin()),
		sim.Config{MaxSteps: len(res.Script), StopWhenComplete: true})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return simRes
}

// TestDetRunMatchesSimulator is the subsystem's fidelity acceptance
// test: a seeded in-process wire run of alphaproto under the dup-replay
// impairment must produce an output tape byte-for-byte identical to the
// lock-step simulator replaying the same schedule on a dup link.
func TestDetRunMatchesSimulator(t *testing.T) {
	params := registry.Params{M: 6}
	input := seq.Seq{3, 0, 5, 1, 4, 2}
	for seed := int64(1); seed <= 20; seed++ {
		s, r, err := registry.Pair("alpha", params, input)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		res, err := DetRun(DetConfig{
			Sender:    s,
			Receiver:  r,
			Input:     input,
			Seed:      seed,
			DupEveryN: 4, // the dup-replay impairment
		})
		if err != nil {
			t.Fatalf("seed %d: DetRun: %v", seed, err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("seed %d: %v", seed, res.SafetyViolation)
		}
		if !res.Complete {
			t.Fatalf("seed %d: incomplete after %d steps: %s", seed, res.Steps, res.Output)
		}
		simRes := replayInSim(t, "alpha", params, input, res)
		if simRes.SafetyViolation != nil {
			t.Fatalf("seed %d: sim replay violation: %v", seed, simRes.SafetyViolation)
		}
		if !simRes.Output.Equal(res.Output) {
			t.Fatalf("seed %d: wire output %s != sim output %s", seed, res.Output, simRes.Output)
		}
		if !simRes.OutputComplete {
			t.Fatalf("seed %d: sim replay incomplete: %s", seed, simRes.Output)
		}
	}
}

// TestDetRunDeterministic: identical configs yield identical schedules
// and outputs.
func TestDetRunDeterministic(t *testing.T) {
	params := registry.Params{M: 4}
	input := seq.Seq{2, 0, 3, 1}
	run := func() DetResult {
		s, r, err := registry.Pair("alpha", params, input)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		res, err := DetRun(DetConfig{Sender: s, Receiver: r, Input: input, Seed: 7})
		if err != nil {
			t.Fatalf("DetRun: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Output.Equal(b.Output) || a.Steps != b.Steps || len(a.Script) != len(b.Script) {
		t.Fatalf("two identical det runs diverged: %d/%d steps, %s vs %s",
			a.Steps, b.Steps, a.Output, b.Output)
	}
	for i := range a.Script {
		if a.Script[i].Key() != b.Script[i].Key() {
			t.Fatalf("schedules diverge at step %d: %s vs %s", i, a.Script[i], b.Script[i])
		}
	}
}

// TestDetRunScheduleSurvivesScratchReuse pins the encode-scratch reuse
// in route: every message recorded in the schedule must be byte-identical
// to a fresh, independently allocated codec round-trip of itself. If a
// recorded message ever aliased the reused scratch buffer, a later
// encode would have rewritten its bytes and this comparison would break.
func TestDetRunScheduleSurvivesScratchReuse(t *testing.T) {
	params := registry.Params{M: 6}
	input := seq.Seq{3, 0, 5, 1, 4, 2}
	s, r, err := registry.Pair("alpha", params, input)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	res, err := DetRun(DetConfig{Sender: s, Receiver: r, Input: input, Seed: 11, DupEveryN: 3})
	if err != nil {
		t.Fatalf("DetRun: %v", err)
	}
	delivers := 0
	for i, act := range res.Script {
		if act.Kind != trace.ActDeliver {
			continue
		}
		delivers++
		fresh := AppendFrame(nil, Frame{Session: 1, Dir: act.Dir, Msg: act.Msg})
		f, err := DecodeFrame(fresh)
		if err != nil {
			t.Fatalf("step %d: fresh round-trip of recorded msg %q: %v", i, act.Msg, err)
		}
		if f.Msg != act.Msg {
			t.Fatalf("step %d: recorded msg %q != fresh round-trip %q", i, act.Msg, f.Msg)
		}
	}
	if delivers == 0 {
		t.Fatal("schedule recorded no deliveries; test exercised nothing")
	}
}

// TestDetRunOtherProtocols: the codec path carries every registered
// protocol without mechanical failure. The det scheduler is a full dup
// adversary (any ever-sent message, any time), so protocols that are
// unsafe on dup channels — the paper's counterexamples — may rightly
// violate safety here; that verdict is the runner working, not failing.
// Replaying any violating schedule in the simulator must reproduce the
// same tape, violation included.
func TestDetRunOtherProtocols(t *testing.T) {
	params := registry.Params{M: 4, Timeout: 8, Window: 4}
	input := seq.Seq{1, 0, 3, 2}
	for _, name := range registry.ProtocolNames() {
		s, r, err := registry.Pair(name, params, input)
		if err != nil {
			t.Fatalf("Pair(%s): %v", name, err)
		}
		res, err := DetRun(DetConfig{Sender: s, Receiver: r, Input: input, Seed: 3})
		if err != nil {
			t.Fatalf("%s: DetRun: %v", name, err)
		}
		simRes := replayInSim(t, name, params, input, res)
		if !simRes.Output.Equal(res.Output) {
			t.Errorf("%s: wire output %s != sim output %s", name, res.Output, simRes.Output)
		}
		if (simRes.SafetyViolation == nil) != (res.SafetyViolation == nil) {
			t.Errorf("%s: safety verdicts disagree: wire %v, sim %v",
				name, res.SafetyViolation, simRes.SafetyViolation)
		}
	}
}
