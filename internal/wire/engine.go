package wire

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
)

// Engine selects how a mux executes its sessions.
//
// The event-loop engine (the default) runs every session as an inline
// state machine on a fixed pool of workers: frame arrival and pacing
// ticks become events on a per-worker queue, the protocol Step runs to
// completion on the loop, and a session at rest costs a struct, two
// inboxes, and one timer-heap entry — no goroutines, no runtime timers,
// no contexts. That flat footprint is what lets one mux hold a million
// concurrent sessions; the goroutine engine's 2N stacks and 2N
// scheduler entities stop far short of that.
//
// The goroutine engine is the original execution model — a dedicated
// sender+receiver goroutine pair per session — kept as a comparison
// baseline and as the reference semantics the equivalence suite holds
// the loop engine to.
type Engine int

const (
	// EngineLoop is the event-loop engine (the zero value, so every
	// config that does not choose gets the scalable engine).
	EngineLoop Engine = iota
	// EngineGoroutine is the goroutine-pair-per-session engine.
	EngineGoroutine
)

// String names the engine as the -engine flag spells it.
func (e Engine) String() string {
	if e == EngineGoroutine {
		return "goroutine"
	}
	return "loop"
}

// ParseEngine resolves an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "loop", "":
		return EngineLoop, nil
	case "goroutine":
		return EngineGoroutine, nil
	}
	return 0, fmt.Errorf("wire: unknown engine %q (have loop, goroutine)", s)
}

// maxLoopWorkers caps the worker pool: past the point where every CPU
// has a worker, more loops only add queues to migrate sessions across.
const maxLoopWorkers = 64

// timerEntry is one session's pending wakeup: the earlier of its next
// pacing tick and its deadline, as nanoseconds since the epoch. Each
// attached unfinished session has exactly one live entry; a finished
// session's entry stays in the heap and is discarded when popped
// (lazy removal keeps pop O(log n) with no search).
type timerEntry struct {
	at int64
	s  *Session
}

// timerHeap is a binary min-heap on wake time, hand-rolled on a slice
// so push and pop stay inlineable and allocation-free at steady state
// (the backing array reaches fleet size once and is reused).
type timerHeap []timerEntry

func (h *timerHeap) push(at int64, s *Session) {
	*h = append(*h, timerEntry{at: at, s: s})
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if hh[p].at <= hh[i].at {
			break
		}
		hh[p], hh[i] = hh[i], hh[p]
		i = p
	}
}

func (h *timerHeap) pop() timerEntry {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = timerEntry{} // release the *Session so finished fleets collect
	*h = hh[:n]
	hh = hh[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && hh[l].at < hh[small].at {
			small = l
		}
		if r < n && hh[r].at < hh[small].at {
			small = r
		}
		if small == i {
			break
		}
		hh[i], hh[small] = hh[small], hh[i]
		i = small
	}
	return top
}

// loopEngine is the mux's event-loop executor: a fixed pool of workers,
// each owning a shard group of sessions. A session is pinned to one
// worker by id hash for its whole life, so all of its state is
// single-threaded with no per-field locking — the same ownership
// discipline the goroutine engine gets from its two loops, at a
// fraction of the footprint.
type loopEngine struct {
	m       *Mux
	workers []*loopWorker
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

func newLoopEngine(m *Mux, workers int) *loopEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxLoopWorkers {
		workers = maxLoopWorkers
	}
	e := &loopEngine{
		m:       m,
		workers: make([]*loopWorker, workers),
		stop:    make(chan struct{}),
	}
	for i := range e.workers {
		w := &loopWorker{
			eng:    e,
			notify: make(chan struct{}, 1),
			batch:  make([]msg.Msg, 0, 64),
		}
		e.workers[i] = w
		e.wg.Add(1)
		go w.run()
	}
	return e
}

// workerFor pins a session id to a worker (Fibonacci hash, like the
// mux's shard and stripe selection, so sequential ids spread evenly).
func (e *loopEngine) workerFor(id uint64) *loopWorker {
	return e.workers[((id*fibMul)>>32)%uint64(len(e.workers))]
}

// start attaches a registered session to its worker and schedules its
// first service. deadlineAt zero means no deadline. onDone, when
// non-nil, receives the report on the worker goroutine as the session
// finishes; when nil the report is delivered through s.done for Run to
// collect. The first pacing tick is phase-shifted by a per-session
// hash so a fleet started together does not put every session's tick
// on the same instant (the million-session thundering herd).
func (e *loopEngine) start(s *Session, deadlineAt time.Time, onDone func(Report)) {
	now := time.Now()
	s.start = now
	s.deadlineAt = deadlineAt
	phase := time.Duration((uint64(s.cfg.Seed) * fibMul) % uint64(s.cfg.Tick))
	s.tickNext = now.Add(s.cfg.Tick/2 + phase)
	s.bo = newBackoff(s.cfg.Tick, s.cfg.Seed, now)
	s.onDone = onDone
	if onDone == nil {
		s.done = make(chan struct{})
	}
	w := e.workerFor(s.cfg.ID)
	s.worker = w
	s.mux.noteSessionStart(s)
	s.loopLive.Store(true)
	w.schedule(s)
}

// cancel requests a session finish early (the event-loop counterpart
// of ctx cancellation); the worker delivers the incomplete report.
func (e *loopEngine) cancel(s *Session) {
	s.cancelReq.Store(true)
	s.worker.schedule(s)
}

// close stops the workers and finishes any sessions still attached, so
// no Run or Serve caller is left waiting on a report.
func (e *loopEngine) close() {
	e.once.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// loopWorker drives one shard group of sessions: a ready queue fed by
// the routers (frame arrivals) and control operations (start, cancel),
// plus a timer heap for pacing ticks and deadlines. The ready queue is
// a mutex-guarded slice with the same Dekker-style sleep handshake as
// the session inboxes: a producer only touches the notify channel when
// the worker has declared itself parked, so a busy worker costs
// producers one atomic load per wakeup attempt, not a channel op.
type loopWorker struct {
	eng *loopEngine

	mu      sync.Mutex
	ready   []*Session
	stopped bool

	sleeping atomic.Bool
	notify   chan struct{}

	// Worker-owned (no locking): the timer heap and the drain scratch
	// buffer shared by every session on this worker — per-session state
	// stays flat because the burst buffer is pooled here, not there.
	timers timerHeap
	batch  []msg.Msg
}

// schedule queues s for service. The scheduled flag makes the queue
// idempotent: however many frames land between services, the session
// occupies at most one ready slot. Callers may race freely — the CAS
// admits exactly one enqueue per wakeup.
func (w *loopWorker) schedule(s *Session) {
	if !s.scheduled.CompareAndSwap(false, true) {
		return
	}
	w.mu.Lock()
	if w.stopped {
		// Engine shut down under the session: deliver its (incomplete)
		// report here so no Run/Serve caller hangs. The mutex serializes
		// this with the worker's own shutdown sweep.
		if !s.finished {
			w.finish(s)
		}
		w.mu.Unlock()
		return
	}
	w.ready = append(w.ready, s)
	w.mu.Unlock()
	if w.sleeping.Load() {
		w.sleeping.Store(false)
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
}

// run is the worker loop: swap the ready queue, service each session,
// fire due timers, park when idle until the next event or timer.
func (w *loopWorker) run() {
	defer w.eng.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	ready := make([]*Session, 0, 256)
	for {
		select {
		case <-w.eng.stop:
			w.shutdown()
			return
		default:
		}
		w.mu.Lock()
		ready, w.ready = w.ready, ready[:0]
		w.mu.Unlock()
		progress := len(ready) > 0
		for i, s := range ready {
			w.service(s)
			ready[i] = nil // no stale *Session pins in the swap buffer
		}
		if len(w.timers) > 0 {
			now := time.Now()
			nowNs := now.UnixNano()
			for len(w.timers) > 0 && w.timers[0].at <= nowNs {
				e := w.timers.pop()
				w.fire(e.s, now)
				progress = true
			}
		}
		if progress {
			continue
		}
		// Idle: arm the sleep flag, re-check the queue once (the Dekker
		// handshake with schedule), then park until a wakeup, the next
		// timer deadline, or engine stop.
		w.sleeping.Store(true)
		w.mu.Lock()
		n := len(w.ready)
		w.mu.Unlock()
		if n > 0 {
			w.sleeping.Store(false)
			continue
		}
		d := time.Hour
		if len(w.timers) > 0 {
			if d = time.Until(time.Unix(0, w.timers[0].at)); d <= 0 {
				w.sleeping.Store(false)
				continue
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-w.eng.stop:
			w.sleeping.Store(false)
			w.shutdown()
			return
		case <-w.notify:
		case <-timer.C:
		}
		w.sleeping.Store(false)
	}
}

// service runs one session's queued work: first-time attach, pending
// cancellation, then a burst drain of both inboxes through the shared
// step machines. Clearing the scheduled flag before draining closes
// the race with a concurrent router publish — a frame staged after the
// drain re-queues the session; a frame published before the clear is
// seen by this drain.
func (w *loopWorker) service(s *Session) {
	s.scheduled.Store(false)
	if s.finished {
		return
	}
	if !s.attached {
		s.attached = true
		w.timers.push(s.nextWake(), s)
	}
	if s.cancelReq.Load() {
		w.finish(s)
		return
	}
	if s.runsSender() {
		w.batch = s.senderInbox.drain(w.batch)
		for _, mg := range w.batch {
			if !s.senderEvent(protocol.RecvEvent(mg)) {
				w.finish(s)
				return
			}
		}
		if s.senderFinished() {
			s.complete = true
			w.finish(s)
			return
		}
	}
	if s.runsReceiver() {
		w.batch = s.receiverInbox.drain(w.batch)
		for _, mg := range w.batch {
			if s.receiverEvent(protocol.RecvEvent(mg)) != stepRunning {
				w.finish(s)
				return
			}
		}
	}
}

// fire handles a session's timer wakeup: deadline expiry finishes it
// (Complete=false — never a safety verdict), a due pacing tick steps
// the receiver and, when the retransmission backoff agrees, the
// sender; then the one live heap entry is re-armed at the next wake.
func (w *loopWorker) fire(s *Session, now time.Time) {
	if s.finished {
		return // lazily removed entry
	}
	if s.cancelReq.Load() {
		w.finish(s)
		return
	}
	if !s.deadlineAt.IsZero() && !now.Before(s.deadlineAt) {
		w.finish(s)
		return
	}
	if !now.Before(s.tickNext) {
		if s.runsReceiver() {
			if s.receiverEvent(protocol.TickEvent()) != stepRunning {
				w.finish(s)
				return
			}
		}
		if s.runsSender() && s.bo.due(now) {
			if !s.senderEvent(protocol.TickEvent()) {
				w.finish(s)
				return
			}
			s.bo.arm(now)
			if s.senderFinished() {
				s.complete = true
				w.finish(s)
				return
			}
		}
		s.tickNext = now.Add(s.cfg.Tick)
	}
	w.timers.push(s.nextWake(), s)
}

// finish retires a session on its worker: close the inboxes (late
// frames count as late), drop it from the routing table, build and
// deliver the report, and fold the aggregate metrics. The session's
// timer entry, if still in the heap, is discarded lazily on pop.
func (w *loopWorker) finish(s *Session) {
	s.finished = true
	s.loopLive.Store(false)
	s.senderInbox.close()
	s.receiverInbox.close()
	s.mux.unregister(s.cfg.ID)
	rep := s.buildReport(time.Since(s.start))
	s.mux.noteSessionEnd(s, rep)
	if s.onDone != nil {
		s.onDone(rep)
	} else {
		s.rep = rep
		close(s.done)
	}
}

// shutdown finishes every session still owned by this worker — queued,
// attached, or both — under the mutex, so a racing schedule on another
// goroutine either hands its session to this sweep or finishes it
// itself, never both.
func (w *loopWorker) shutdown() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	for _, s := range w.ready {
		if !s.finished {
			w.finish(s)
		}
	}
	w.ready = nil
	for len(w.timers) > 0 {
		e := w.timers.pop()
		if !e.s.finished {
			w.finish(e.s)
		}
	}
}
