package wire

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"seqtx/internal/obs"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// zooParams satisfies every registered protocol's constructor (hybrid
// needs Timeout, the windowed family needs Window).
var zooParams = registry.Params{M: 8, Timeout: 4, Window: 4}

// equivalenceZoo is the registry zoo the engine-equivalence suite runs,
// and the impairment presets each protocol must survive. naive is
// excluded by design: it is the paper's deliberately unsafe strawman.
// afwz skips dup-replay and reorder because its model assumes a
// duplication-free FIFO channel — on those presets it (correctly)
// violates or stalls on either engine, so neither cell says anything
// about engine equivalence.
var equivalenceZoo = []struct {
	proto   string
	presets []string
}{
	{"alpha", []string{"none", "burst-drop", "dup-replay", "reorder", "corrupt", "partition-heal"}},
	{"afwz", []string{"none", "burst-drop", "corrupt", "partition-heal"}},
	{"hybrid", []string{"none", "burst-drop", "dup-replay"}},
	{"abp", []string{"none", "burst-drop", "dup-replay"}},
	{"stenning", []string{"none", "burst-drop", "dup-replay"}},
	{"modseq", []string{"none", "burst-drop", "dup-replay"}},
	{"gobackn", []string{"none", "burst-drop", "dup-replay"}},
	{"selrepeat", []string{"none", "burst-drop", "dup-replay"}},
	{"stab", []string{"none", "burst-drop", "dup-replay"}},
}

// runZooFleet runs n sessions of one protocol under one impairment
// preset on the given engine, with per-session seeds fixed by index so
// both engines draw identical jitter streams.
func runZooFleet(t *testing.T, engine Engine, proto, preset string, n int) []Report {
	t.Helper()
	var tr Transport = NewInproc(0, nil)
	if preset != "none" {
		opts, err := ImpairPreset(preset)
		if err != nil {
			t.Fatalf("ImpairPreset: %v", err)
		}
		if tr, err = NewImpairment(tr, opts, nil); err != nil {
			t.Fatalf("NewImpairment: %v", err)
		}
	}
	cfgs := make([]SessionConfig, n)
	for i := range cfgs {
		x := make(seq.Seq, 4)
		for j := range x {
			x[j] = seq.Item((i + j) % zooParams.M)
		}
		s, r, err := registry.Pair(proto, zooParams, x)
		if err != nil {
			t.Fatalf("Pair(%s): %v", proto, err)
		}
		cfgs[i] = SessionConfig{
			ID: uint64(i + 1), Sender: s, Receiver: r, Input: x,
			Tick: 200 * time.Microsecond, Deadline: 30 * time.Second,
			Seed: int64(1000*i + 7),
		}
	}
	reports, err := Serve(context.Background(), ServeConfig{
		Transport: tr, Sessions: cfgs, Engine: engine,
	})
	if err != nil {
		t.Fatalf("Serve(%s/%s/%v): %v", proto, preset, engine, err)
	}
	return reports
}

// TestEngineEquivalence is the engine-equivalence suite: the registry
// zoo × impairment presets, run on both engines with the same seeds.
// Both engines must reach the same verdict on every cell — every
// session completes with Output exactly equal to Input and no safety
// violation. Wall-clock-dependent fields (Elapsed, Retransmits,
// LearnTimes) legitimately differ between engines on a live transport
// — the engines schedule real time differently — so equivalence is
// asserted on the observable protocol outcome, the same observable the
// DESIGN §8 sim↔wire fidelity argument uses; DESIGN §11 makes the
// argument for why this is the right equivalence.
func TestEngineEquivalence(t *testing.T) {
	for _, z := range equivalenceZoo {
		for _, preset := range z.presets {
			z, preset := z, preset
			t.Run(fmt.Sprintf("%s/%s", z.proto, preset), func(t *testing.T) {
				t.Parallel()
				loop := runZooFleet(t, EngineLoop, z.proto, preset, 2)
				gor := runZooFleet(t, EngineGoroutine, z.proto, preset, 2)
				for i := range loop {
					for eng, rep := range map[string]Report{"loop": loop[i], "goroutine": gor[i]} {
						if rep.SafetyViolation != nil {
							t.Errorf("%s engine, session %d: safety violation: %v", eng, rep.ID, rep.SafetyViolation)
						}
						if !rep.Complete {
							t.Errorf("%s engine, session %d: incomplete (%d/%d items)", eng, rep.ID, len(rep.Output), len(rep.Input))
						}
						if !rep.Output.Equal(rep.Input) {
							t.Errorf("%s engine, session %d: output %s != input %s", eng, rep.ID, rep.Output, rep.Input)
						}
					}
					if !loop[i].Output.Equal(gor[i].Output) {
						t.Errorf("session %d: engines disagree on output: loop=%s goroutine=%s",
							loop[i].ID, loop[i].Output, gor[i].Output)
					}
				}
			})
		}
	}
}

// TestLoopDeadlineExpiry is the satellite regression for the context
// tower's replacement: on the event-loop engine a session deadline is
// carried in session state and enforced by the worker's timer heap, and
// its expiry must report Complete=false — never a safety verdict.
func TestLoopDeadlineExpiry(t *testing.T) {
	mux := NewMuxConfig(NewInproc(0, nil), MuxConfig{Engine: EngineLoop})
	defer mux.Close()
	x := seq.Seq{0, 1, 2, 3, 4, 5}
	s, r, err := registry.Pair("alpha", zooParams, x)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	sess, err := mux.NewSession(SessionConfig{
		ID: 1, Sender: s, Receiver: r, Input: x,
		Tick: 50 * time.Millisecond, Deadline: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	rep := sess.Run(context.Background())
	if rep.Complete {
		t.Error("session completed despite a 10ms deadline and 50ms tick")
	}
	if rep.SafetyViolation != nil {
		t.Errorf("deadline expiry reported as safety violation: %v", rep.SafetyViolation)
	}
	if rep.Elapsed < 10*time.Millisecond {
		t.Errorf("session ended at %v, before its 10ms deadline", rep.Elapsed)
	}
}

// TestLoopRunCtxDeadline: a ctx deadline folds into the same event-loop
// deadline state as SessionConfig.Deadline, with the same verdict
// contract.
func TestLoopRunCtxDeadline(t *testing.T) {
	mux := NewMuxConfig(NewInproc(0, nil), MuxConfig{Engine: EngineLoop})
	defer mux.Close()
	x := seq.Seq{0, 1, 2, 3}
	s, r, err := registry.Pair("alpha", zooParams, x)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	sess, err := mux.NewSession(SessionConfig{
		ID: 1, Sender: s, Receiver: r, Input: x, Tick: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rep := sess.Run(ctx)
	if rep.Complete {
		t.Error("session completed despite a 10ms ctx deadline and 50ms tick")
	}
	if rep.SafetyViolation != nil {
		t.Errorf("ctx deadline expiry reported as safety violation: %v", rep.SafetyViolation)
	}
}

// TestLoopRunContextCancellation: cancelling the Run ctx on the loop
// engine finishes the session promptly through the engine's cancel
// path (no contexts inside the loop).
func TestLoopRunContextCancellation(t *testing.T) {
	mux := NewMuxConfig(NewInproc(0, nil), MuxConfig{Engine: EngineLoop})
	defer mux.Close()
	x := seq.Seq{0, 1, 2, 3}
	s, r, err := registry.Pair("alpha", zooParams, x)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	sess, err := mux.NewSession(SessionConfig{
		ID: 1, Sender: s, Receiver: r, Input: x, Tick: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	done := make(chan Report, 1)
	go func() { done <- sess.Run(ctx) }()
	select {
	case rep := <-done:
		if rep.Complete {
			t.Error("idle session reported complete after cancellation")
		}
		if rep.SafetyViolation != nil {
			t.Errorf("cancellation reported as safety violation: %v", rep.SafetyViolation)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after ctx cancellation")
	}
}

// TestOverflowSessionIDs drives sessions whose ids are past the dense
// table's range through the copy-on-write shard path: registration,
// routing, duplicate rejection, and completion must all behave exactly
// as for ordinary ids.
func TestOverflowSessionIDs(t *testing.T) {
	mux := NewMuxConfig(NewInproc(0, nil), MuxConfig{Engine: EngineLoop})
	defer mux.Close()
	base := denseLimit + 17
	sessions := make([]*Session, 4)
	for i := range sessions {
		x := seq.Seq{0, 1, 2}
		s, r, err := registry.Pair("alpha", zooParams, x)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		sess, err := mux.NewSession(SessionConfig{
			ID: base + uint64(i)*denseLimit, Sender: s, Receiver: r, Input: x,
			Tick: 200 * time.Microsecond, Deadline: 30 * time.Second,
		})
		if err != nil {
			t.Fatalf("NewSession(overflow id): %v", err)
		}
		sessions[i] = sess
	}
	if got := mux.lookup(base); got != sessions[0] {
		t.Fatal("overflow lookup did not find the registered session")
	}
	if mux.lookup(base+1) != nil {
		t.Fatal("overflow lookup found an unregistered id")
	}
	x := seq.Seq{0}
	s2, r2, _ := registry.Pair("alpha", zooParams, x)
	if _, err := mux.NewSession(SessionConfig{ID: base, Sender: s2, Receiver: r2, Input: x}); err == nil {
		t.Fatal("duplicate overflow session id accepted")
	}
	for _, sess := range sessions {
		rep := sess.Run(context.Background())
		if rep.SafetyViolation != nil || !rep.Complete {
			t.Errorf("overflow session %d: complete=%v violation=%v", rep.ID, rep.Complete, rep.SafetyViolation)
		}
	}
	if mux.lookup(base) != nil {
		t.Error("finished overflow session still registered")
	}
}

// TestTimerHeapOrdering pins the worker timer heap's min-heap law: pops
// come out in non-decreasing wake order whatever the push order.
func TestTimerHeapOrdering(t *testing.T) {
	var h timerHeap
	rng := uint64(42)
	want := make([]int64, 0, 200)
	for i := 0; i < 200; i++ {
		at := int64(splitmix64(&rng) % 1_000_000)
		want = append(want, at)
		h.push(at, nil)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		if got := h.pop().at; got != w {
			t.Fatalf("pop %d: at=%d, want %d", i, got, w)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not empty after draining: %d left", len(h))
	}
}

// TestLoopPrimitivesZeroAlloc pins the per-event allocation contract of
// the event-loop engine's worker-local primitives: once the heap's
// backing array and the inbox are warm, a timer cycle and an inbox
// cycle must not allocate — these run once per session event at
// million-session scale.
func TestLoopPrimitivesZeroAlloc(t *testing.T) {
	var h timerHeap
	for i := 0; i < 64; i++ {
		h.push(int64(i), nil)
	}
	for len(h) > 0 {
		h.pop()
	}
	assertZeroAlloc(t, "timer heap push/pop cycle", func() {
		for i := 0; i < 32; i++ {
			h.push(int64(i%7), nil)
		}
		for len(h) > 0 {
			h.pop()
		}
	})

	q := newInbox(64)
	batch := q.drain(nil)
	assertZeroAlloc(t, "inbox stage/publish/drain cycle", func() {
		for i := 0; i < 16; i++ {
			if q.stage("d:1") != pushOK {
				t.Fatal("stage failed")
			}
		}
		q.publish()
		batch = q.drain(batch)
		if len(batch) != 16 {
			t.Fatalf("drained %d, want 16", len(batch))
		}
	})
}

// TestLoopFlatMemory is the tentpole's footprint contract in miniature:
// a fleet of idle event-loop sessions must cost no goroutines and a
// bounded, flat number of bytes each. 20k sessions keep the test fast;
// the per-session bound (8 KB) is far under a goroutine-pair's stacks
// and catches regressions like a per-session *rand.Rand (~5 KB) or
// restored 1024-slot inboxes (~32 KB) immediately.
func TestLoopFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory census in -short mode")
	}
	const n = 20000
	mux := NewMuxConfig(NewInproc(0, nil), MuxConfig{Engine: EngineLoop, EventSampleEvery: 1024})
	defer mux.Close()

	baseGoroutines := runtime.NumGoroutine()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	x := seq.Seq{0, 1, 2, 3}
	sessions := make([]*Session, n)
	for i := range sessions {
		s, r, err := registry.Pair("alpha", zooParams, x)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		sess, err := mux.NewSession(SessionConfig{
			ID: uint64(i + 1), Sender: s, Receiver: r, Input: x,
			// An hour-scale tick keeps every session attached but inert:
			// the census measures resident state, not traffic.
			Tick: time.Hour,
		})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		sessions[i] = sess
		mux.loop.start(sess, time.Time{}, func(Report) {})
	}
	// Let the workers attach everything, then census.
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	runtime.ReadMemStats(&after)

	perSession := float64(after.HeapInuse-before.HeapInuse) / n
	t.Logf("%d idle loop sessions: %.0f B/session heap-in-use", n, perSession)
	if perSession > 8192 {
		t.Errorf("per-session heap %.0f B exceeds the 8 KB flat-memory bound", perSession)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+maxLoopWorkers+8 {
		t.Errorf("%d goroutines for %d loop sessions (started with %d): engine is not goroutine-free",
			g, n, baseGoroutines)
	}
}

// TestInboxSizeAndDropAccounting: a deliberately tiny inbox under a
// frame flood drops the overflow, and the drops surface both in the
// mux-wide inbox_full counter and in the session's own report — the
// observability contract that makes a small default safe to ship.
func TestInboxSizeAndDropAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	mux := NewMuxConfig(NewInproc(0, reg), MuxConfig{Obs: reg, Engine: EngineLoop})
	x := seq.Seq{0, 1, 2, 3}
	s, r, err := registry.Pair("alpha", zooParams, x)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	sess, err := mux.NewSession(SessionConfig{
		ID: 1, Sender: s, Receiver: r, Input: x, Tick: time.Hour, InboxSize: 1,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if got := len(sess.receiverInbox.slots); got != 1 {
		t.Fatalf("InboxSize 1 allocated %d slots", got)
	}
	// Flood the unstarted session's receiver inbox: nothing drains it, so
	// everything past the first frame must drop.
	payload := s.Alphabet().Msgs()[0]
	for i := 0; i < 64; i++ {
		if err := mux.send(1, SenderEnd.Dir(), payload); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for sess.inboxDrops.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	drops := sess.inboxDrops.Load()
	if drops == 0 {
		t.Fatal("no inbox drops recorded for a 1-slot inbox under a 64-frame flood")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`wire_frames_dropped_total{cause="inbox_full"}`]; got < drops {
		t.Errorf("mux inbox_full counter %d < session drops %d", got, drops)
	}
	rep := sess.Run(contextWithTimeout(t, 50*time.Millisecond))
	if rep.InboxDrops < int(drops) {
		t.Errorf("Report.InboxDrops = %d, want >= %d", rep.InboxDrops, drops)
	}
	mux.Close()
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestEventSampling: with EventSampleEvery set, only the sampled
// sessions' lifecycle events reach the bounded event ring, while the
// aggregate counters stay exact for the whole fleet.
func TestEventSampling(t *testing.T) {
	reg := obs.NewRegistry()
	cfgs := make([]SessionConfig, 8)
	for i := range cfgs {
		x := seq.Seq{0, 1}
		s, r, err := registry.Pair("alpha", zooParams, x)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		cfgs[i] = SessionConfig{
			ID: uint64(i + 1), Sender: s, Receiver: r, Input: x,
			Tick: 200 * time.Microsecond, Deadline: 30 * time.Second,
		}
	}
	reports, err := Serve(context.Background(), ServeConfig{
		Transport: NewInproc(0, reg), Sessions: cfgs, Obs: reg,
		EventSampleEvery: 4,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for _, rep := range reports {
		if !rep.Complete {
			t.Errorf("session %d incomplete", rep.ID)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wire_sessions_completed_total"]; got != int64(len(cfgs)) {
		t.Errorf("completed counter = %d, want %d (aggregates must stay exact under sampling)", got, len(cfgs))
	}
	starts, ends := 0, 0
	for _, ev := range snap.Events {
		switch ev.Kind {
		case "wire.session.start":
			starts++
		case "wire.session.end":
			ends++
		}
	}
	// Ids 1..8 sampled every 4 → exactly ids 4 and 8 emit.
	if starts != 2 || ends != 2 {
		t.Errorf("sampled lifecycle events: %d starts, %d ends; want 2 and 2", starts, ends)
	}
}
