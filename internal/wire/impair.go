package wire

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/faults"
	"seqtx/internal/obs"
)

// Options configures an Impairment: the declarative fault windows shared
// with the lock-step scheduler (faults.Spec), plus the two wire-native
// impairments that in the sim are channel-kind semantics rather than plan
// faults — duplication and reordering.
//
// Window positions in the Spec are counted in frames handled per
// direction within a lock shard (sessions are striped over shards; the
// single-stream case is exactly the old global count): the burst-drop
// preset that drops scheduler steps 10..50 drops the 10th..49th frame
// offered on that direction here.
type Options struct {
	// Spec supplies burst-drop, partition-heal, and corruption windows.
	// Specs with process faults (crash-restarts) are rejected: a link
	// cannot reset a remote process's state.
	Spec faults.Spec
	// DupEveryN, when > 0, delivers every Nth S→R frame twice — the live
	// counterpart of the dup channel's replay freedom.
	DupEveryN int
	// ReorderEveryN, when > 0, holds every Nth S→R frame back until one
	// more frame has passed it — a pairwise reordering.
	ReorderEveryN int
	// Model, when non-nil, applies a quantitative channel model to the
	// S→R direction: one seeded schedule decision per offered frame
	// (pass / drop / duplicate), ahead of the preset pipeline. See
	// model.go and internal/chanmodel.
	Model chanmodel.Model
	// ModelSeed seeds the model's decision schedule.
	ModelSeed int64
	// RecordModel, when > 0, keeps the first that many realized model
	// decisions for Impairment.ModelRealized (cross-realization tests).
	RecordModel int
}

// active reports whether any impairment is configured at all; when not,
// the layer is a pure passthrough and the hot path skips its locks.
func (o Options) active() bool {
	return len(o.Spec.Bursts) > 0 || len(o.Spec.Partitions) > 0 ||
		len(o.Spec.Corruptions) > 0 || o.DupEveryN > 0 || o.ReorderEveryN > 0
}

// Name returns the display name of the configured impairment: the fault
// spec's preset name, the model spec, or "none".
func (o Options) ImpairName() string {
	switch {
	case o.Spec.Name != "":
		return o.Spec.Name
	case o.Model != nil:
		return o.Model.Spec()
	default:
		return "none"
	}
}

// ImpairPreset returns the named impairment options. The menu is the
// faults presets that make sense on a link (none, burst-drop,
// partition-heal, corrupt) plus the wire-native "dup-replay" and
// "reorder".
func ImpairPreset(name string) (Options, error) {
	switch name {
	case "dup-replay":
		return Options{Spec: faults.Spec{Name: "dup-replay"}, DupEveryN: 4}, nil
	case "reorder":
		return Options{Spec: faults.Spec{Name: "reorder"}, ReorderEveryN: 3}, nil
	}
	s, err := faults.PresetSpec(name)
	if err != nil {
		return Options{}, fmt.Errorf("wire: unknown impairment %q (have %s)",
			name, strings.Join(ImpairPresetNames(), ", "))
	}
	if s.ProcessFaults() {
		return Options{}, fmt.Errorf(
			"wire: preset %q injects process faults (crash-restart), which belong to the session supervisor, not the link — pass it via -crash-preset (wire.ServeSupervised) instead; link impairments are %s",
			name, strings.Join(ImpairPresetNames(), ", "))
	}
	return Options{Spec: s}, nil
}

// ImpairPresetNames lists the valid impairment preset names, sorted.
func ImpairPresetNames() []string {
	names := []string{"dup-replay", "reorder"}
	for _, n := range faults.PresetNames() {
		if s, err := faults.PresetSpec(n); err == nil && !s.ProcessFaults() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// heldFrame is a partition-delayed frame: released once the direction's
// frame count passes release. The bytes live in a pooled buffer owned by
// the impairment until the frame is forwarded.
type heldFrame struct {
	release int
	frame   []byte
}

// dirState is the per-shard, per-direction impairment state.
type dirState struct {
	count   int    // frames offered on this direction so far
	prev    []byte // last frame actually sent (corruption substitute), reused
	held    []heldFrame
	pending []byte // reorder slot: goes out after the next frame
}

// impairShardBits/impairShards size the lock striping: sessions hash onto
// shards, so 64+ concurrent sessions spread over independent mutexes
// instead of serializing on one.
const (
	impairShardBits = 4
	impairShards    = 1 << impairShardBits
)

// impairShard is one lock stripe: its own mutex and per-direction state.
// Fault windows are counted within the stripe; a single session (and
// every frame that does not parse as a frame) always lands on the same
// stripe, so single-stream behavior is identical to a global count.
type impairShard struct {
	mu   sync.Mutex
	dirs [2]dirState // indexed dir-1 (SToR, RToS)
}

// Impairment wraps a Transport and replays fault windows against its
// Send path. Frames travelling SenderEnd→ReceiverEnd are the S→R half,
// the reverse the R→S half, exactly as in the sim's Link. Recv passes
// through untouched (faults live on the wire, not in the receiver).
// Batched sends are impaired frame-by-frame — a batch is only an ordered
// burst, and every frame in it meets the same window logic a lone frame
// would (DESIGN.md §9).
type Impairment struct {
	inner       Transport
	opts        Options
	passthrough bool
	stage       *modelStage // non-nil when Options.Model is set

	shards [impairShards]impairShard

	dropped   *obs.Counter
	heldTotal *obs.Counter
	corrupted *obs.Counter
	duped     *obs.Counter
	reordered *obs.Counter
}

var _ Transport = (*Impairment)(nil)
var _ BatchSender = (*Impairment)(nil)

// NewImpairment wraps inner with the given options. reg (which may be
// nil) receives the impairment counters.
func NewImpairment(inner Transport, o Options, reg *obs.Registry) (*Impairment, error) {
	if o.Spec.ProcessFaults() {
		return nil, fmt.Errorf(
			"wire: fault spec %q injects process faults, which belong to the session supervisor (wire.ServeSupervised / -crash-preset), not the link",
			o.Spec.Name)
	}
	var stage *modelStage
	if o.Model != nil {
		stage = newModelStage(o.Model, o.ModelSeed, o.RecordModel, reg)
	}
	return &Impairment{
		inner:       inner,
		opts:        o,
		passthrough: !o.active(),
		stage:       stage,
		dropped:     reg.Counter(`wire_frames_dropped_total{cause="impair"}`),
		heldTotal:   reg.Counter("wire_frames_held_total"),
		corrupted:   reg.Counter("wire_frames_corrupted_total"),
		duped:       reg.Counter("wire_frames_dup_total"),
		reordered:   reg.Counter("wire_frames_reordered_total"),
	}, nil
}

// Name implements Transport.
func (im *Impairment) Name() string {
	return im.inner.Name() + "+" + im.opts.ImpairName()
}

// Recv implements Transport (pass-through).
func (im *Impairment) Recv(at End) <-chan []byte { return im.inner.Recv(at) }

// shardFor picks the lock stripe for a frame by its session id
// (Fibonacci-hashed); anything that does not parse shards together.
func (im *Impairment) shardFor(frame []byte) *impairShard {
	id, ok := PeekFrameSession(frame)
	if !ok {
		return &im.shards[0]
	}
	return &im.shards[(id*0x9E3779B97F4A7C15)>>(64-impairShardBits)]
}

// Close implements Transport: releases every still-held frame (a
// partition heals at shutdown rather than swallowing messages — the
// model's partitions delay, never delete), then closes the inner
// transport.
func (im *Impairment) Close() error {
	for s := range im.shards {
		sh := &im.shards[s]
		sh.mu.Lock()
		for _, end := range []End{SenderEnd, ReceiverEnd} {
			st := &sh.dirs[end.Dir()-1]
			for _, h := range st.held {
				im.inner.Send(end, h.frame)
				putBuf(h.frame)
			}
			st.held = nil
			if st.pending != nil {
				im.inner.Send(end, st.pending)
				putBuf(st.pending)
				st.pending = nil
			}
		}
		sh.mu.Unlock()
	}
	return im.inner.Close()
}

// impairScratch accumulates one offered burst's surviving frames: views
// into caller-owned frames, into scratch (substituted bytes), or into
// impairment-owned pooled buffers queued for release after the flush.
type impairScratch struct {
	frames [][]byte // surviving frames to forward, in order
	free   [][]byte // pooled buffers to release once forwarded
	buf    []byte   // copies of substituted (prev) bytes
}

var impairScratchPool = sync.Pool{New: func() any { return &impairScratch{} }}

func getImpairScratch() *impairScratch { return impairScratchPool.Get().(*impairScratch) }

func releaseImpairScratch(sc *impairScratch) {
	for _, b := range sc.free {
		putBuf(b)
	}
	for i := range sc.frames {
		sc.frames[i] = nil
	}
	for i := range sc.free {
		sc.free[i] = nil
	}
	sc.frames, sc.free, sc.buf = sc.frames[:0], sc.free[:0], sc.buf[:0]
	impairScratchPool.Put(sc)
}

// copyIn copies b into the scratch and returns the stable view. Growth
// reallocations keep earlier views valid (they pin the old array).
func (sc *impairScratch) copyIn(b []byte) []byte {
	start := len(sc.buf)
	sc.buf = append(sc.buf, b...)
	return sc.buf[start:]
}

// Send implements Transport: the model stage first decides how many
// copies of the frame enter the wire (1 without a model); each copy then
// runs the preset pipeline — partition release, partition hold, burst
// drop, corruption substitution, reordering, duplication — and what
// survives is forwarded to the inner transport frame-by-frame.
func (im *Impairment) Send(from End, frame []byte) error {
	for copies := im.modelCopies(from); copies > 0; copies-- {
		if err := im.sendOne(from, frame); err != nil {
			return err
		}
	}
	return nil
}

func (im *Impairment) sendOne(from End, frame []byte) error {
	if im.passthrough {
		return im.inner.Send(from, frame)
	}
	sc := getImpairScratch()
	defer releaseImpairScratch(sc)
	dir := from.Dir()
	sh := im.shardFor(frame)
	sh.mu.Lock()
	im.applyLocked(&sh.dirs[dir-1], dir, frame, sc)
	sh.mu.Unlock()
	for _, f := range sc.frames {
		if err := im.inner.Send(from, f); err != nil {
			return err
		}
	}
	return nil
}

// SendBatch implements BatchSender: every frame in the burst goes through
// the same per-frame impairment logic as a lone Send, and the survivors
// are forwarded as one burst on the inner transport.
func (im *Impairment) SendBatch(from End, frames [][]byte) error {
	if im.passthrough && im.stage == nil {
		return sendFrames(im.inner, from, frames)
	}
	sc := getImpairScratch()
	defer releaseImpairScratch(sc)
	dir := from.Dir()
	for _, frame := range frames {
		for copies := im.modelCopies(from); copies > 0; copies-- {
			if im.passthrough {
				sc.frames = append(sc.frames, frame)
				continue
			}
			sh := im.shardFor(frame)
			sh.mu.Lock()
			im.applyLocked(&sh.dirs[dir-1], dir, frame, sc)
			sh.mu.Unlock()
		}
	}
	if len(sc.frames) == 0 {
		return nil
	}
	return sendFrames(im.inner, from, sc.frames)
}

// applyLocked runs one offered frame through the impairment pipeline
// under its shard lock, appending the frames to put on the wire (in
// order) to sc. Emitted bytes alias either the caller's frame, sc's
// scratch, or pooled buffers queued on sc.free — all stable until the
// caller forwards and releases sc.
func (im *Impairment) applyLocked(st *dirState, dir channel.Dir, frame []byte, sc *impairScratch) {
	n := st.count
	st.count++

	// Heal: flush held frames whose window has passed.
	if len(st.held) > 0 {
		kept := st.held[:0]
		for _, h := range st.held {
			if h.release <= n {
				sc.frames = append(sc.frames, h.frame)
				sc.free = append(sc.free, h.frame)
			} else {
				kept = append(kept, h)
			}
		}
		st.held = kept
	}

	// Partition: delay the frame until the window ends.
	if release, blocked := im.partitioned(dir, n); blocked {
		cp := append(getBuf(len(frame)), frame...)
		st.held = append(st.held, heldFrame{release: release, frame: cp})
		im.heldTotal.Inc()
		return
	}

	// Burst drop: the frame is deleted.
	for _, b := range im.opts.Spec.Bursts {
		if b.Dir == dir && n >= b.From && n < b.From+b.Length {
			im.dropped.Inc()
			return
		}
	}

	// Corruption: substitute the previously sent frame on this half (a
	// genuinely transmitted value, mirroring faults.Corrupt: in-alphabet,
	// wrong content). The substitute is copied to scratch so later frames
	// in the same burst may overwrite st.prev.
	out := frame
	for _, c := range im.opts.Spec.Corruptions {
		if c.Dir == dir && c.EveryN > 0 && len(st.prev) > 0 && (n+1)%c.EveryN == 0 {
			out = sc.copyIn(st.prev)
			im.corrupted.Inc()
			break
		}
	}

	// Reorder: every Nth frame waits for its successor.
	if im.opts.ReorderEveryN > 0 && dir == channel.SToR {
		if st.pending != nil {
			pending := st.pending
			st.pending = nil
			st.prev = append(st.prev[:0], out...)
			sc.frames = append(sc.frames, out, pending)
			sc.free = append(sc.free, pending)
			im.reordered.Inc()
			return
		}
		if (n+1)%im.opts.ReorderEveryN == 0 {
			st.pending = append(getBuf(len(out)), out...)
			return
		}
	}

	st.prev = append(st.prev[:0], out...)
	sc.frames = append(sc.frames, out)

	// Duplication: the dup channel's replay freedom, live.
	if im.opts.DupEveryN > 0 && dir == channel.SToR && (n+1)%im.opts.DupEveryN == 0 {
		im.duped.Inc()
		sc.frames = append(sc.frames, out)
	}
}

// partitioned reports whether frame n on dir falls inside a partition
// window, and if so when it may be released.
func (im *Impairment) partitioned(dir channel.Dir, n int) (release int, blocked bool) {
	for _, w := range im.opts.Spec.Partitions {
		if n < w.From || n >= w.From+w.Length {
			continue
		}
		for _, d := range w.Dirs {
			if d == dir {
				return w.From + w.Length, true
			}
		}
	}
	return 0, false
}
