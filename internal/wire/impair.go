package wire

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"seqtx/internal/channel"
	"seqtx/internal/faults"
	"seqtx/internal/obs"
)

// Options configures an Impairment: the declarative fault windows shared
// with the lock-step scheduler (faults.Spec), plus the two wire-native
// impairments that in the sim are channel-kind semantics rather than plan
// faults — duplication and reordering.
//
// Window positions in the Spec are counted in frames handled per
// direction (the live counterpart of adversary steps): the burst-drop
// preset that drops scheduler steps 10..50 drops the 10th..49th frame
// offered on that direction here.
type Options struct {
	// Spec supplies burst-drop, partition-heal, and corruption windows.
	// Specs with process faults (crash-restarts) are rejected: a link
	// cannot reset a remote process's state.
	Spec faults.Spec
	// DupEveryN, when > 0, delivers every Nth S→R frame twice — the live
	// counterpart of the dup channel's replay freedom.
	DupEveryN int
	// ReorderEveryN, when > 0, holds every Nth S→R frame back until one
	// more frame has passed it — a pairwise reordering.
	ReorderEveryN int
}

// ImpairPreset returns the named impairment options. The menu is the
// faults presets that make sense on a link (none, burst-drop,
// partition-heal, corrupt) plus the wire-native "dup-replay" and
// "reorder".
func ImpairPreset(name string) (Options, error) {
	switch name {
	case "dup-replay":
		return Options{Spec: faults.Spec{Name: "dup-replay"}, DupEveryN: 4}, nil
	case "reorder":
		return Options{Spec: faults.Spec{Name: "reorder"}, ReorderEveryN: 3}, nil
	}
	s, err := faults.PresetSpec(name)
	if err != nil {
		return Options{}, fmt.Errorf("wire: unknown impairment %q (have %s)",
			name, strings.Join(ImpairPresetNames(), ", "))
	}
	if s.ProcessFaults() {
		return Options{}, fmt.Errorf(
			"wire: preset %q injects process faults (crash-restart), which a live link cannot replay (have %s)",
			name, strings.Join(ImpairPresetNames(), ", "))
	}
	return Options{Spec: s}, nil
}

// ImpairPresetNames lists the valid impairment preset names, sorted.
func ImpairPresetNames() []string {
	names := []string{"dup-replay", "reorder"}
	for _, n := range faults.PresetNames() {
		if s, err := faults.PresetSpec(n); err == nil && !s.ProcessFaults() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// heldFrame is a partition-delayed frame: released once the direction's
// frame count passes release.
type heldFrame struct {
	release int
	frame   []byte
}

// dirState is the per-direction impairment state.
type dirState struct {
	count   int    // frames offered on this direction so far
	prev    []byte // last frame actually sent (corruption substitute)
	held    []heldFrame
	pending []byte // reorder slot: goes out after the next frame
}

// Impairment wraps a Transport and replays fault windows against its
// Send path. Frames travelling SenderEnd→ReceiverEnd are the S→R half,
// the reverse the R→S half, exactly as in the sim's Link. Recv passes
// through untouched (faults live on the wire, not in the receiver).
type Impairment struct {
	inner Transport
	opts  Options

	mu   sync.Mutex
	dirs map[channel.Dir]*dirState

	dropped   *obs.Counter
	heldTotal *obs.Counter
	corrupted *obs.Counter
	duped     *obs.Counter
	reordered *obs.Counter
}

var _ Transport = (*Impairment)(nil)

// NewImpairment wraps inner with the given options. reg (which may be
// nil) receives the impairment counters.
func NewImpairment(inner Transport, o Options, reg *obs.Registry) (*Impairment, error) {
	if o.Spec.ProcessFaults() {
		return nil, fmt.Errorf("wire: fault spec %q injects process faults, which a live link cannot replay", o.Spec.Name)
	}
	return &Impairment{
		inner: inner,
		opts:  o,
		dirs: map[channel.Dir]*dirState{
			channel.SToR: {},
			channel.RToS: {},
		},
		dropped:   reg.Counter(`wire_frames_dropped_total{cause="impair"}`),
		heldTotal: reg.Counter("wire_frames_held_total"),
		corrupted: reg.Counter("wire_frames_corrupted_total"),
		duped:     reg.Counter("wire_frames_dup_total"),
		reordered: reg.Counter("wire_frames_reordered_total"),
	}, nil
}

// Name implements Transport.
func (im *Impairment) Name() string {
	name := im.opts.Spec.Name
	if name == "" {
		name = "none"
	}
	return im.inner.Name() + "+" + name
}

// Recv implements Transport (pass-through).
func (im *Impairment) Recv(at End) <-chan []byte { return im.inner.Recv(at) }

// Close implements Transport: releases every still-held frame (a
// partition heals at shutdown rather than swallowing messages — the
// model's partitions delay, never delete), then closes the inner
// transport.
func (im *Impairment) Close() error {
	im.mu.Lock()
	for _, end := range []End{SenderEnd, ReceiverEnd} {
		st := im.dirs[end.Dir()]
		for _, h := range st.held {
			im.inner.Send(end, h.frame)
		}
		st.held = nil
		if st.pending != nil {
			im.inner.Send(end, st.pending)
			st.pending = nil
		}
	}
	im.mu.Unlock()
	return im.inner.Close()
}

// Send implements Transport: it applies, in order, partition release,
// partition hold, burst drop, corruption substitution, reordering, and
// duplication, then forwards what survives to the inner transport.
func (im *Impairment) Send(from End, frame []byte) error {
	dir := from.Dir()
	im.mu.Lock()
	defer im.mu.Unlock()
	st := im.dirs[dir]
	n := st.count
	st.count++

	// Heal: flush held frames whose window has passed.
	if len(st.held) > 0 {
		kept := st.held[:0]
		for _, h := range st.held {
			if h.release <= n {
				if err := im.inner.Send(from, h.frame); err != nil {
					return err
				}
			} else {
				kept = append(kept, h)
			}
		}
		st.held = kept
	}

	// Partition: delay the frame until the window ends.
	if release, blocked := im.partitioned(dir, n); blocked {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		st.held = append(st.held, heldFrame{release: release, frame: cp})
		im.heldTotal.Inc()
		return nil
	}

	// Burst drop: the frame is deleted.
	for _, b := range im.opts.Spec.Bursts {
		if b.Dir == dir && n >= b.From && n < b.From+b.Length {
			im.dropped.Inc()
			return nil
		}
	}

	// Corruption: substitute the previously sent frame on this half (a
	// genuinely transmitted value, mirroring faults.Corrupt: in-alphabet,
	// wrong content).
	out := frame
	for _, c := range im.opts.Spec.Corruptions {
		if c.Dir == dir && c.EveryN > 0 && st.prev != nil && (n+1)%c.EveryN == 0 {
			out = st.prev
			im.corrupted.Inc()
			break
		}
	}

	cp := make([]byte, len(out))
	copy(cp, out)

	// Reorder: every Nth frame waits for its successor.
	if im.opts.ReorderEveryN > 0 && dir == channel.SToR {
		if st.pending != nil {
			pending := st.pending
			st.pending = nil
			st.prev = cp
			if err := im.inner.Send(from, cp); err != nil {
				return err
			}
			im.reordered.Inc()
			return im.inner.Send(from, pending)
		}
		if (n+1)%im.opts.ReorderEveryN == 0 {
			st.pending = cp
			return nil
		}
	}

	st.prev = cp
	if err := im.inner.Send(from, cp); err != nil {
		return err
	}

	// Duplication: the dup channel's replay freedom, live.
	if im.opts.DupEveryN > 0 && dir == channel.SToR && (n+1)%im.opts.DupEveryN == 0 {
		im.duped.Inc()
		return im.inner.Send(from, cp)
	}
	return nil
}

// partitioned reports whether frame n on dir falls inside a partition
// window, and if so when it may be released.
func (im *Impairment) partitioned(dir channel.Dir, n int) (release int, blocked bool) {
	for _, w := range im.opts.Spec.Partitions {
		if n < w.From || n >= w.From+w.Length {
			continue
		}
		for _, d := range w.Dirs {
			if d == dir {
				return w.From + w.Length, true
			}
		}
	}
	return 0, false
}
