package wire

import (
	"sort"
	"strings"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/faults"
	"seqtx/internal/obs"
)

// drain collects every frame currently buffered on ch without blocking.
func drain(ch <-chan []byte) [][]byte {
	var out [][]byte
	for {
		select {
		case f, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, f)
		default:
			return out
		}
	}
}

func sendN(t *testing.T, tr Transport, from End, frames ...[]byte) {
	t.Helper()
	for _, f := range frames {
		if err := tr.Send(from, f); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
}

func TestImpairmentBurstDrop(t *testing.T) {
	inner := NewInproc(0, nil)
	spec := faults.Spec{Name: "burst", Bursts: []faults.BurstWindow{{Dir: channel.SToR, From: 2, Length: 3}}}
	tr, err := NewImpairment(inner, Options{Spec: spec}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	for i := 0; i < 8; i++ {
		sendN(t, tr, SenderEnd, []byte{byte(i)})
	}
	got := drain(inner.Recv(ReceiverEnd))
	// Frames 2,3,4 fall in the burst window: 8 offered, 5 delivered.
	if len(got) != 5 {
		t.Fatalf("got %d frames, want 5", len(got))
	}
	for _, f := range got {
		if n := int(f[0]); n >= 2 && n < 5 {
			t.Errorf("frame %d should have been dropped", n)
		}
	}
	// The reverse direction is untouched.
	sendN(t, tr, ReceiverEnd, []byte{0xaa}, []byte{0xbb}, []byte{0xcc})
	if got := drain(inner.Recv(SenderEnd)); len(got) != 3 {
		t.Fatalf("R→S frames affected by S→R burst: got %d, want 3", len(got))
	}
}

func TestImpairmentPartitionHoldsThenHeals(t *testing.T) {
	inner := NewInproc(0, nil)
	spec := faults.Spec{Name: "part", Partitions: []faults.PartitionWindow{
		{From: 1, Length: 2, Dirs: []channel.Dir{channel.SToR}},
	}}
	tr, err := NewImpairment(inner, Options{Spec: spec}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	sendN(t, tr, SenderEnd, []byte{0}, []byte{1}, []byte{2}) // 1 and 2 held
	if got := drain(inner.Recv(ReceiverEnd)); len(got) != 1 || got[0][0] != 0 {
		t.Fatalf("during partition: got %d frames, want just frame 0", len(got))
	}
	sendN(t, tr, SenderEnd, []byte{3}) // past the window: heals, flushes 1 and 2
	got := drain(inner.Recv(ReceiverEnd))
	if len(got) != 3 {
		t.Fatalf("after heal: got %d frames, want 3 (held 1,2 then 3)", len(got))
	}
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Fatalf("heal order wrong: %v", got)
	}
}

func TestImpairmentCloseFlushesHeldFrames(t *testing.T) {
	inner := NewInproc(0, nil)
	spec := faults.Spec{Name: "part", Partitions: []faults.PartitionWindow{
		{From: 0, Length: 100, Dirs: []channel.Dir{channel.SToR}},
	}}
	tr, err := NewImpairment(inner, Options{Spec: spec}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	sendN(t, tr, SenderEnd, []byte{7}, []byte{8})
	if got := drain(inner.Recv(ReceiverEnd)); len(got) != 0 {
		t.Fatalf("partition leaked %d frames", len(got))
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := drain(inner.Recv(ReceiverEnd))
	if len(got) != 2 {
		t.Fatalf("Close flushed %d frames, want 2 (partitions delay, never delete)", len(got))
	}
}

func TestImpairmentCorruptionSubstitutesPreviousFrame(t *testing.T) {
	inner := NewInproc(0, nil)
	spec := faults.Spec{Name: "corr", Corruptions: []faults.CorruptRule{{Dir: channel.SToR, EveryN: 3}}}
	reg := obs.NewRegistry()
	tr, err := NewImpairment(inner, Options{Spec: spec}, reg)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	sendN(t, tr, SenderEnd, []byte{0}, []byte{1}, []byte{2}, []byte{3}, []byte{4}, []byte{5})
	got := drain(inner.Recv(ReceiverEnd))
	if len(got) != 6 {
		t.Fatalf("got %d frames, want 6", len(got))
	}
	// Every 3rd frame (indices 2 and 5) is replaced by its predecessor.
	want := []byte{0, 1, 1, 3, 4, 4}
	for i, f := range got {
		if f[0] != want[i] {
			t.Errorf("frame %d = %d, want %d", i, f[0], want[i])
		}
	}
	if n := reg.Snapshot().Counters["wire_frames_corrupted_total"]; n != 2 {
		t.Errorf("corrupted counter = %d, want 2", n)
	}
}

func TestImpairmentDupEveryN(t *testing.T) {
	inner := NewInproc(0, nil)
	tr, err := NewImpairment(inner, Options{Spec: faults.Spec{Name: "dup"}, DupEveryN: 2}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	sendN(t, tr, SenderEnd, []byte{0}, []byte{1}, []byte{2}, []byte{3})
	got := drain(inner.Recv(ReceiverEnd))
	want := []byte{0, 1, 1, 2, 3, 3} // frames 1 and 3 delivered twice
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f[0] != want[i] {
			t.Errorf("frame %d = %d, want %d", i, f[0], want[i])
		}
	}
}

func TestImpairmentReorderEveryN(t *testing.T) {
	inner := NewInproc(0, nil)
	tr, err := NewImpairment(inner, Options{Spec: faults.Spec{Name: "ro"}, ReorderEveryN: 3}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	sendN(t, tr, SenderEnd, []byte{0}, []byte{1}, []byte{2}, []byte{3}, []byte{4})
	got := drain(inner.Recv(ReceiverEnd))
	// Frame 2 is held until frame 3 passes it: 0,1,3,2,4.
	want := []byte{0, 1, 3, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f[0] != want[i] {
			t.Errorf("frame %d = %d, want %d", i, f[0], want[i])
		}
	}
}

func TestImpairPresetRejectsProcessFaults(t *testing.T) {
	for _, name := range []string{"crash-sender", "crash-receiver", "crash-scramble-both"} {
		if _, err := ImpairPreset(name); err == nil {
			t.Errorf("ImpairPreset(%s) accepted a process-fault preset", name)
		} else if !strings.Contains(err.Error(), "crash-restart") {
			t.Errorf("ImpairPreset(%s) error %q does not explain the rejection", name, err)
		} else if !strings.Contains(err.Error(), "-crash-preset") {
			// The rejection must route the user to the supervisor API, not
			// dead-end them: crash presets are valid, just not on the link.
			t.Errorf("ImpairPreset(%s) error %q does not point at the supervisor", name, err)
		}
	}
	spec, err := faults.PresetSpec("crash-sender")
	if err != nil {
		t.Fatalf("PresetSpec: %v", err)
	}
	if _, err := NewImpairment(NewInproc(0, nil), Options{Spec: spec}, nil); err == nil {
		t.Error("NewImpairment accepted a process-fault spec")
	}
}

func TestImpairPresetUnknownListsNamesSorted(t *testing.T) {
	_, err := ImpairPreset("no-such-impairment")
	if err == nil {
		t.Fatal("unknown impairment accepted")
	}
	names := ImpairPresetNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("ImpairPresetNames not sorted: %v", names)
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention valid name %q", err, n)
		}
		if _, perr := ImpairPreset(n); perr != nil {
			t.Errorf("listed preset %q rejected: %v", n, perr)
		}
	}
}
