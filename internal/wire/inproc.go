package wire

import (
	"sync"

	"seqtx/internal/obs"
)

// Inproc is the in-process transport: two buffered Go channels, one per
// direction. Delivery order is whatever the goroutine scheduler makes of
// it, and a full buffer drops the frame (backpressure surfaces as loss,
// which the protocols must survive anyway) — so even in-process, the link
// honestly behaves like an unreliable channel rather than an idealized
// FIFO pipe.
//
// The channels carry wire blobs: a bare frame per Send, or one batch blob
// per SendBatch — the in-process counterpart of writev, paying one
// channel handoff for a whole burst. All copies land in pooled buffers;
// steady-state traffic allocates nothing.
type Inproc struct {
	toReceiver chan []byte
	toSender   chan []byte
	dropped    *obs.Counter

	mu     sync.RWMutex
	closed bool
}

var _ Transport = (*Inproc)(nil)
var _ BatchSender = (*Inproc)(nil)

// DefaultInprocCapacity is the per-direction blob buffer used by
// NewInproc when capacity is not positive.
const DefaultInprocCapacity = 1024

// NewInproc returns an in-process transport with the given per-direction
// buffer capacity. reg (which may be nil) receives the backpressure-drop
// counter.
func NewInproc(capacity int, reg *obs.Registry) *Inproc {
	if capacity <= 0 {
		capacity = DefaultInprocCapacity
	}
	return &Inproc{
		toReceiver: make(chan []byte, capacity),
		toSender:   make(chan []byte, capacity),
		dropped:    reg.Counter(`wire_frames_dropped_total{cause="backpressure"}`),
	}
}

// Name implements Transport.
func (t *Inproc) Name() string { return "inproc" }

// enqueue copies already-encoded blob bytes into a pooled buffer and
// performs the non-blocking handoff toward the opposite end, counting
// nFrames drops if the buffer is full. Callers hold the read lock.
func (t *Inproc) enqueue(from End, blob []byte, nFrames int) {
	cp := append(getBuf(len(blob)), blob...)
	ch := t.toReceiver
	if from == ReceiverEnd {
		ch = t.toSender
	}
	select {
	case ch <- cp:
	default:
		t.dropped.Add(int64(nFrames))
		putBuf(cp)
	}
}

// Send implements Transport: a non-blocking enqueue toward the opposite
// end. A full buffer drops the frame and counts it.
func (t *Inproc) Send(from End, frame []byte) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ErrClosed
	}
	t.enqueue(from, frame, 1)
	return nil
}

// SendBatch implements BatchSender: the whole burst is packed into batch
// blobs (one channel handoff per blob) and enqueued in order. A full
// buffer drops a blob's worth of frames at once — an ordered burst lost
// together, which the protocols tolerate as channel loss.
func (t *Inproc) SendBatch(from End, frames [][]byte) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ErrClosed
	}
	for start := 0; start < len(frames); {
		n, size := batchFit(frames[start:], blobCap)
		if n == 1 {
			t.enqueue(from, frames[start], 1)
			start++
			continue
		}
		blob := AppendBatch(getBuf(size), frames[start:start+n])
		ch := t.toReceiver
		if from == ReceiverEnd {
			ch = t.toSender
		}
		select {
		case ch <- blob:
		default:
			t.dropped.Add(int64(n))
			putBuf(blob)
		}
		start += n
	}
	return nil
}

// batchFit returns how many leading frames fit in one blob of at most
// limit bytes (and at most maxBatchFrames), and a size estimate covering
// their batch encoding. At least one frame always fits (a lone oversized
// frame gets its own blob).
func batchFit(frames [][]byte, limit int) (n, size int) {
	total := batchOverhead(len(frames))
	for i, f := range frames {
		if i > 0 && (total+len(f) > limit || i >= maxBatchFrames) {
			return i, total
		}
		total += len(f)
	}
	return len(frames), total
}

// sendBlob implements blobSender: the pre-encoded batch blob changes
// hands without a copy — one channel handoff moves the whole burst, and
// the buffer is released here only if the handoff fails.
func (t *Inproc) sendBlob(from End, blob []byte, nFrames int) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		putBuf(blob)
		return ErrClosed
	}
	ch := t.toReceiver
	if from == ReceiverEnd {
		ch = t.toSender
	}
	select {
	case ch <- blob:
	default:
		t.dropped.Add(int64(nFrames))
		putBuf(blob)
	}
	return nil
}

// Recv implements Transport.
func (t *Inproc) Recv(at End) <-chan []byte {
	if at == SenderEnd {
		return t.toSender
	}
	return t.toReceiver
}

// Close implements Transport.
func (t *Inproc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	close(t.toReceiver)
	close(t.toSender)
	return nil
}
