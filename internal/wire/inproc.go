package wire

import (
	"sync"

	"seqtx/internal/obs"
)

// Inproc is the in-process transport: two buffered Go channels, one per
// direction. Delivery order is whatever the goroutine scheduler makes of
// it, and a full buffer drops the frame (backpressure surfaces as loss,
// which the protocols must survive anyway) — so even in-process, the link
// honestly behaves like an unreliable channel rather than an idealized
// FIFO pipe.
type Inproc struct {
	toReceiver chan []byte
	toSender   chan []byte
	dropped    *obs.Counter

	mu     sync.RWMutex
	closed bool
}

var _ Transport = (*Inproc)(nil)

// DefaultInprocCapacity is the per-direction frame buffer used by
// NewInproc when capacity is not positive.
const DefaultInprocCapacity = 1024

// NewInproc returns an in-process transport with the given per-direction
// buffer capacity. reg (which may be nil) receives the backpressure-drop
// counter.
func NewInproc(capacity int, reg *obs.Registry) *Inproc {
	if capacity <= 0 {
		capacity = DefaultInprocCapacity
	}
	return &Inproc{
		toReceiver: make(chan []byte, capacity),
		toSender:   make(chan []byte, capacity),
		dropped:    reg.Counter(`wire_frames_dropped_total{cause="backpressure"}`),
	}
}

// Name implements Transport.
func (t *Inproc) Name() string { return "inproc" }

// Send implements Transport: a non-blocking enqueue toward the opposite
// end. A full buffer drops the frame and counts it.
func (t *Inproc) Send(from End, frame []byte) error {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ErrClosed
	}
	ch := t.toReceiver
	if from == ReceiverEnd {
		ch = t.toSender
	}
	select {
	case ch <- cp:
	default:
		t.dropped.Inc()
	}
	return nil
}

// Recv implements Transport.
func (t *Inproc) Recv(at End) <-chan []byte {
	if at == SenderEnd {
		return t.toSender
	}
	return t.toReceiver
}

// Close implements Transport.
func (t *Inproc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	close(t.toReceiver)
	close(t.toSender)
	return nil
}
