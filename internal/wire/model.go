package wire

import (
	"strings"
	"sync"

	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/obs"
)

// modelStage realizes a quantitative channel model (internal/chanmodel)
// on the live wire: one decision per frame offered on the S→R data
// direction — Pass forwards the frame, Drop deletes it, Dup forwards it
// twice. The schedule is a single per-direction stream (its own mutex,
// not the session-striped shard locks), because a model's decision
// sequence is defined over the direction's offered-frame order — the
// same contract the sim adversary consumes, which is what makes equal
// (model, seed) pairs produce byte-identical delivery schedules in both
// realizations (DESIGN.md §13, pinned by TestModelScheduleSimWireIdentical).
//
// The R→S (ack) direction passes through untouched, matching the sim
// adapter: the model impairs the data plane.
type modelStage struct {
	mu     sync.Mutex
	model  chanmodel.Model
	sched  *chanmodel.Schedule
	record []byte
	recMax int

	pass    *obs.Counter
	dropped *obs.Counter
	duped   *obs.Counter
}

func newModelStage(model chanmodel.Model, seed int64, recMax int, reg *obs.Registry) *modelStage {
	return &modelStage{
		model:   model,
		sched:   model.Schedule(seed),
		recMax:  recMax,
		pass:    reg.Counter("wire_chanmodel_pass_total"),
		dropped: reg.Counter("wire_chanmodel_drop_total"),
		duped:   reg.Counter("wire_chanmodel_dup_total"),
	}
}

// decide draws the next decision for one offered S→R frame.
func (ms *modelStage) decide() chanmodel.Decision {
	ms.mu.Lock()
	d := ms.sched.Next()
	if len(ms.record) < ms.recMax {
		ms.record = append(ms.record, byte(d))
	}
	ms.mu.Unlock()
	switch d {
	case chanmodel.Drop:
		ms.dropped.Inc()
	case chanmodel.Dup:
		ms.duped.Inc()
	default:
		ms.pass.Inc()
	}
	return d
}

// realized returns a copy of the recorded decision stream.
func (ms *modelStage) realized() []byte {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]byte, len(ms.record))
	copy(out, ms.record)
	return out
}

// ModelRealized returns the realized model decision stream (the first
// Options.RecordModel decisions), for cross-realization pinning; nil
// when no model is configured.
func (im *Impairment) ModelRealized() []byte {
	if im.stage == nil {
		return nil
	}
	return im.stage.realized()
}

// modelCopies returns how many copies of an offered frame the model
// lets onto the wire: 1 with no model or on the ack direction, else
// 0, 1, or 2 per the schedule.
func (im *Impairment) modelCopies(from End) int {
	if im.stage == nil || from.Dir() != channel.SToR {
		return 1
	}
	switch im.stage.decide() {
	case chanmodel.Drop:
		return 0
	case chanmodel.Dup:
		return 2
	}
	return 1
}

// ImpairSpec resolves an impairment specification: a preset name
// (ImpairPreset) or a channel-model spec such as "iid-loss(p=0.1)"
// (chanmodel.Parse), seeded with seed. This is the single entry point
// CLI -impair flags go through, so model specs work anywhere a preset
// does.
func ImpairSpec(spec string, seed int64) (Options, error) {
	opts, perr := ImpairPreset(spec)
	if perr == nil {
		return opts, nil
	}
	// Model specs always carry a parenthesized parameter list; bare names
	// that are not presets keep the preset error (with its name menu).
	if !strings.Contains(spec, "(") {
		return Options{}, perr
	}
	model, err := chanmodel.Parse(spec)
	if err != nil {
		return Options{}, err
	}
	return Options{Model: model, ModelSeed: seed}, nil
}
