package wire

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"seqtx/internal/chanmodel"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestImpairSpecResolution(t *testing.T) {
	// Preset names still resolve to presets.
	opts, err := ImpairSpec("burst-drop", 1)
	if err != nil {
		t.Fatalf("ImpairSpec(burst-drop): %v", err)
	}
	if opts.Model != nil || len(opts.Spec.Bursts) == 0 {
		t.Errorf("burst-drop resolved to %+v, want the preset", opts)
	}
	// Model specs resolve to models with the seed threaded through.
	opts, err = ImpairSpec("iid-loss(p=0.1)", 7)
	if err != nil {
		t.Fatalf("ImpairSpec(iid-loss): %v", err)
	}
	if opts.Model == nil || opts.Model.Spec() != "iid-loss(p=0.1)" || opts.ModelSeed != 7 {
		t.Errorf("model spec resolved to %+v", opts)
	}
	if opts.ImpairName() != "iid-loss(p=0.1)" {
		t.Errorf("ImpairName = %q", opts.ImpairName())
	}
	// Bad names and bad specs both fail, with distinct error shapes.
	if _, err := ImpairSpec("no-such-preset", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := ImpairSpec("iid-loss(p=7)", 1); err == nil {
		t.Error("out-of-range model spec accepted")
	}
	// Crash presets stay rejected on the link.
	if _, err := ImpairSpec("crash-sender", 1); err == nil {
		t.Error("process-fault preset accepted as a link impairment")
	}
}

// TestModelStageFrameLevel drives raw frames through a model
// impairment: the surviving sequence must agree exactly with the
// reference schedule (drop → missing, dup → doubled, in offer order),
// and the ack direction must pass through untouched.
func TestModelStageFrameLevel(t *testing.T) {
	const n = 512
	model := chanmodel.MustParse("iid-loss(p=0.3)")
	inner := NewInproc(n*2+16, nil)
	tr, err := NewImpairment(inner, Options{Model: model, ModelSeed: 42, RecordModel: n}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	for i := 0; i < n; i++ {
		sendN(t, tr, SenderEnd, []byte{byte(i), byte(i >> 8)})
	}
	want := chanmodel.ScheduleBytes(model, 42, n)
	if got := tr.ModelRealized(); !bytes.Equal(got, want) {
		t.Fatalf("realized decisions diverge from reference schedule:\n got %q\nwant %q", got, want)
	}
	got := drain(inner.Recv(ReceiverEnd))
	var expect [][]byte
	for i := 0; i < n; i++ {
		f := []byte{byte(i), byte(i >> 8)}
		switch chanmodel.Decision(want[i]) {
		case chanmodel.Pass:
			expect = append(expect, f)
		case chanmodel.Dup:
			expect = append(expect, f, f)
		}
	}
	if len(got) != len(expect) {
		t.Fatalf("%d frames delivered, want %d", len(got), len(expect))
	}
	for i := range got {
		if !bytes.Equal(got[i], expect[i]) {
			t.Fatalf("frame %d = %v, want %v", i, got[i], expect[i])
		}
	}
	// Ack direction: no model decisions, full passthrough.
	sendN(t, tr, ReceiverEnd, []byte{0xaa}, []byte{0xbb})
	if acks := drain(inner.Recv(SenderEnd)); len(acks) != 2 {
		t.Errorf("R→S delivered %d frames, want 2 (model must not touch acks)", len(acks))
	}
	if extra := tr.ModelRealized(); len(extra) != n {
		t.Errorf("ack frames consumed model decisions: %d recorded, want %d", len(extra), n)
	}
}

// TestModelStageBatch pins that batched sends make the same per-frame
// decisions as lone sends.
func TestModelStageBatch(t *testing.T) {
	const n = 256
	model := chanmodel.MustParse("iid-dup(p=0.4)")
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = []byte{byte(i)}
	}
	run := func(batch bool) ([][]byte, []byte) {
		inner := NewInproc(n*2+16, nil)
		tr, err := NewImpairment(inner, Options{Model: model, ModelSeed: 9, RecordModel: n}, nil)
		if err != nil {
			t.Fatalf("NewImpairment: %v", err)
		}
		if batch {
			if err := tr.SendBatch(SenderEnd, frames); err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
		} else {
			sendN(t, tr, SenderEnd, frames...)
		}
		// Batched survivors arrive packed in batch blobs; unpack so both
		// paths compare at the frame level.
		var flat [][]byte
		for _, blob := range drain(inner.Recv(ReceiverEnd)) {
			if IsBatch(blob) {
				if err := SplitBatch(blob, func(frame []byte) error {
					cp := append([]byte(nil), frame...)
					flat = append(flat, cp)
					return nil
				}); err != nil {
					t.Fatalf("SplitBatch: %v", err)
				}
				continue
			}
			flat = append(flat, blob)
		}
		return flat, tr.ModelRealized()
	}
	lone, loneDec := run(false)
	batched, batchDec := run(true)
	if !bytes.Equal(loneDec, batchDec) {
		t.Fatalf("batched decisions diverge from lone sends")
	}
	if len(lone) != len(batched) {
		t.Fatalf("lone delivered %d, batch %d", len(lone), len(batched))
	}
	for i := range lone {
		if !bytes.Equal(lone[i], batched[i]) {
			t.Fatalf("frame %d: lone %v, batch %v", i, lone[i], batched[i])
		}
	}
}

// TestModelWireStatisticalRate checks the wire realization's empirical
// drop rate against the model parameter (5-sigma band).
func TestModelWireStatisticalRate(t *testing.T) {
	const n = 20000
	model := chanmodel.MustParse("ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)")
	inner := NewInproc(n+16, nil)
	tr, err := NewImpairment(inner, Options{Model: model, ModelSeed: 3}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	delivered := 0
	for i := 0; i < n; i++ {
		if err := tr.Send(SenderEnd, []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		delivered += len(drain(inner.Recv(ReceiverEnd)))
	}
	dropRate := 1 - float64(delivered)/float64(n)
	want := model.DropRate()
	// Markov-correlated decisions: inflate the binomial CI 4×.
	ci := 4 * 5 * math.Sqrt(want*(1-want)/float64(n))
	if math.Abs(dropRate-want) > ci {
		t.Errorf("wire empirical drop rate %.5f, want %.5f ± %.5f", dropRate, want, ci)
	}
}

// TestModelScheduleSimWireIdentical is THE cross-realization pin: the
// same (model, seed) must produce a byte-identical delivery schedule in
// the simulator adapter and on the live wire. Both realizations record
// the decisions they actually consumed; both must equal the reference
// stream, and hence each other.
func TestModelScheduleSimWireIdentical(t *testing.T) {
	for _, ms := range []string{"iid-loss(p=0.25)", "iid-dup(p=0.3)", "k-del(k=2,n=8)"} {
		model := chanmodel.MustParse(ms)
		const seed = 1234

		// Sim realization: scripted-delivery adversary over fresh worlds.
		adv := chanmodel.NewAdversary(model, seed)
		adv.RecordRealized(1 << 16)
		for run := 0; run < 8; run++ {
			spec, err := registry.Protocol("alpha", registry.Params{M: 4})
			if err != nil {
				t.Fatal(err)
			}
			x := seq.Seq{0, 1, 2, 3}
			if _, err := sim.RunProtocol(spec, x, model.Kind(), adv,
				sim.Config{MaxSteps: 40000, StopWhenComplete: true}); err != nil {
				t.Fatal(err)
			}
			adv.Reset()
		}
		simDec := adv.Realized()
		if len(simDec) < 16 {
			t.Fatalf("%s: sim realized only %d decisions", ms, len(simDec))
		}

		// Wire realization: model impairment consuming the same stream.
		inner := NewInproc(4*len(simDec)+16, nil)
		tr, err := NewImpairment(inner, Options{Model: model, ModelSeed: seed, RecordModel: len(simDec)}, nil)
		if err != nil {
			t.Fatalf("NewImpairment: %v", err)
		}
		for i := 0; i < len(simDec); i++ {
			sendN(t, tr, SenderEnd, []byte{byte(i)})
		}
		wireDec := tr.ModelRealized()

		ref := chanmodel.ScheduleBytes(model, seed, len(simDec))
		if !bytes.Equal(simDec, ref) {
			t.Errorf("%s: sim decisions diverge from reference\n got %q\nwant %q", ms, simDec, ref)
		}
		if !bytes.Equal(wireDec, ref) {
			t.Errorf("%s: wire decisions diverge from reference\n got %q\nwant %q", ms, wireDec, ref)
		}
		if !bytes.Equal(simDec, wireDec) {
			t.Errorf("%s: sim and wire delivery schedules differ", ms)
		}
	}
}

// TestModelEndToEndSessions runs live mux sessions through a model
// impairment: all sessions complete (retransmission beats loss) with
// zero safety violations.
func TestModelEndToEndSessions(t *testing.T) {
	model := chanmodel.MustParse("iid-loss(p=0.2)")
	inner := NewInproc(0, nil)
	tr, err := NewImpairment(inner, Options{Model: model, ModelSeed: 5}, nil)
	if err != nil {
		t.Fatalf("NewImpairment: %v", err)
	}
	mux := NewMuxConfig(tr, MuxConfig{Engine: EngineLoop})
	defer mux.Close()
	for id := uint64(1); id <= 8; id++ {
		x := seq.Seq{0, 1, 2, 3}
		s, r, err := registry.Pair("alpha", registry.Params{M: 4}, x)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		sess, err := mux.NewSession(SessionConfig{
			ID: id, Sender: s, Receiver: r, Input: x,
			Tick: time.Millisecond, Deadline: 20 * time.Second,
		})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		rep := sess.Run(context.Background())
		if rep.SafetyViolation != nil {
			t.Fatalf("session %d: safety violation under iid-loss: %v", id, rep.SafetyViolation)
		}
		if !rep.Complete {
			t.Errorf("session %d: incomplete", id)
		}
	}
}
