package wire

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/obs"
)

// Mux multiplexes many sessions over one Transport: it encodes outbound
// protocol messages into frames, decodes and routes inbound frames to the
// owning session's inbox, and drops (with a counted cause) anything that
// does not parse, does not belong to a live session, or falls outside the
// session's declared alphabet — the live analogue of the Link's alphabet
// enforcement.
//
// The hot paths are built to scale with session count on one transport:
// the session table is a dense direct-index array for realistic id
// ranges (registration, lookup, and removal are O(1) — the property that
// lets a million sessions come and go), each end's outbound traffic is
// appended into a double-buffered outbox that a flusher goroutine drains
// in writev-style bursts (sendFrames), and session execution is owned by
// the configured engine — the event-loop worker pool by default, the
// goroutine-pair-per-session engine as the comparison baseline.
type Mux struct {
	tr  Transport
	met *muxMetrics

	engine      Engine
	loop        *loopEngine
	sampleEvery uint64

	// dense is the direct-index session table for ids below denseLimit:
	// lookup is a bounds check plus two atomic loads, registration a
	// slot store (amortized over rare doublings). denseMu serializes
	// writers; readers go through the atomic pointers only.
	denseMu sync.Mutex
	dense   atomic.Pointer[[]atomic.Pointer[Session]]

	// shards is the overflow table for ids at or above denseLimit
	// (copy-on-write stripes, scanned on lookup).
	shards [sessionShardCount]sessionShard

	out   [2]outbox // indexed End-1
	pacer *pacer

	routerWg  sync.WaitGroup
	flusherWg sync.WaitGroup
}

// MuxConfig tunes a mux beyond its transport and metrics sink.
type MuxConfig struct {
	// Obs receives the wire metrics and events (nil = no-op sink).
	Obs *obs.Registry
	// Engine selects the session executor; the zero value is the
	// event-loop engine.
	Engine Engine
	// LoopWorkers sizes the event-loop worker pool (0 = GOMAXPROCS,
	// capped at 64). Ignored by the goroutine engine.
	LoopWorkers int
	// EventSampleEvery emits the per-session lifecycle events
	// (wire.session.start / wire.session.end and the supervisor's crash
	// and watchdog events) for one session in every EventSampleEvery;
	// 0 or 1 emits for all. Aggregate counters stay exact regardless —
	// only the bounded event ring is sampled, so a million sessions do
	// not scroll it into noise. Safety-violation events are never
	// sampled away.
	EventSampleEvery uint64
}

// denseBits bounds the direct-index session table: ids below 1<<22
// (~4.2M, comfortably past the million-session target) take the O(1)
// path; larger ids fall back to the copy-on-write shard scan.
const (
	denseBits  = 22
	denseLimit = uint64(1) << denseBits
	// denseSeed is the table's initial capacity; it doubles as needed.
	denseSeed = 1024
)

// sessionShardBits gives 64 overflow shards; lookups there are one
// atomic pointer load plus a linear scan.
const (
	sessionShardBits  = 6
	sessionShardCount = 1 << sessionShardBits
	// fibMul is the 64-bit Fibonacci hashing multiplier: sequential
	// session ids (the common case) spread uniformly over shards.
	fibMul = 0x9E3779B97F4A7C15
)

// sessionShard holds one stripe of the overflow session table as a
// copy-on-write slice: register/unregister (rare) rebuild the slice
// under the stripe mutex, while lookups are one atomic pointer load
// plus a linear scan — no reader lock, no hashing.
type sessionShard struct {
	mu   sync.Mutex // serializes writers; readers go through list only
	list atomic.Pointer[[]sessionEntry]
}

type sessionEntry struct {
	id uint64
	s  *Session
}

func (m *Mux) shard(id uint64) *sessionShard {
	return &m.shards[(id*fibMul)>>(64-sessionShardBits)]
}

// outboxStripeBits gives 2 append stripes per end, keyed by session id,
// so concurrent session loops rarely contend on the same append mutex.
const (
	outboxStripeBits  = 1
	outboxStripeCount = 1 << outboxStripeBits
)

// outChunk is one outbox buffer generation: a pooled blobCap buffer
// pre-seeded with an incremental batch header, frames appended in batch
// wire format (padded length prefix, then the frame), with ends[i] the
// exclusive end offset of frame i in buf. Kept in this shape, the chunk
// IS the wire blob: a blobSender transport takes it whole with no
// re-encoding, while other transports get per-frame views sliced from
// it. A full chunk (bytes or maxBatchFrames) drops further sends
// (counted as outbox_full) — backpressure surfacing as loss, the same
// contract every other hop honors.
type outChunk struct {
	buf  []byte
	ends []int
}

func newOutChunk() *outChunk {
	return &outChunk{
		buf:  seedBatchBlob(getBuf(blobCap)),
		ends: make([]int, 0, 512),
	}
}

// outStripe is one append lane: senders append under the mutex; the
// flusher swaps cur for the drained spare and ships the burst.
type outStripe struct {
	mu    sync.Mutex
	cur   *outChunk
	spare *outChunk
}

// outbox collects one end's outbound frames between flushes, striped by
// session id. notify carries at most one wakeup token (offered on each
// stripe's empty→non-empty transition), so a burst of appends costs one
// channel op total; a frame's per-session order is preserved because a
// session always lands in the same stripe and the flusher drains stripes
// in order within one sendFrames burst.
type outbox struct {
	stripes [outboxStripeCount]outStripe
	closed  atomic.Bool
	notify  chan struct{}
}

func (ob *outbox) init() {
	for i := range ob.stripes {
		ob.stripes[i].cur = newOutChunk()
		ob.stripes[i].spare = newOutChunk()
	}
	ob.notify = make(chan struct{}, 1)
}

// muxMetrics bundles the obs handles, resolved once at mux creation (the
// nil-registry fast path makes every update a no-op).
type muxMetrics struct {
	txSToR, txRToS *obs.Counter
	rxSToR, rxRToS *obs.Counter
	decodeErrors   *obs.Counter
	alien          *obs.Counter
	unknown        *obs.Counter
	inboxFull      *obs.Counter
	outboxFull     *obs.Counter
	batchFrames    *obs.Histogram

	activeN       atomic.Int64
	active        *obs.Gauge
	completed     *obs.Counter
	unfinished    *obs.Counter
	violations    *obs.Counter
	retransmits   *obs.Counter
	retransmitIvl *obs.Histogram
	goodput       *obs.Histogram
	learn         *obs.Histogram

	// wire_stabilize_*: the supervised-session (chaos) metrics — see
	// supervisor.go for the crash-restart and stabilization semantics.
	stabIncarnations *obs.Counter
	stabBadWrites    *obs.Counter
	stabPostViol     *obs.Counter
	stabEscalations  *obs.Counter
	stabTime         *obs.Histogram

	reg *obs.Registry
}

// GoodputBuckets is the bucket ladder for per-session goodput
// (items/second): live sessions pace in milliseconds, so the ladder spans
// sub-1 to tens of thousands of items per second.
var GoodputBuckets = obs.ExpBuckets(0.5, 2, 16)

func newMuxMetrics(reg *obs.Registry) *muxMetrics {
	return &muxMetrics{
		txSToR:       reg.Counter(`wire_frames_tx_total{dir="s_to_r"}`),
		txRToS:       reg.Counter(`wire_frames_tx_total{dir="r_to_s"}`),
		rxSToR:       reg.Counter(`wire_frames_rx_total{dir="s_to_r"}`),
		rxRToS:       reg.Counter(`wire_frames_rx_total{dir="r_to_s"}`),
		decodeErrors: reg.Counter("wire_decode_errors_total"),
		alien:        reg.Counter(`wire_frames_dropped_total{cause="alien"}`),
		unknown:      reg.Counter(`wire_frames_dropped_total{cause="unknown_session"}`),
		inboxFull:    reg.Counter(`wire_frames_dropped_total{cause="inbox_full"}`),
		outboxFull:   reg.Counter(`wire_frames_dropped_total{cause="outbox_full"}`),
		batchFrames:  reg.Histogram("wire_batch_frames", obs.BatchBuckets),
		active:       reg.Gauge("wire_sessions_active"),
		completed:    reg.Counter("wire_sessions_completed_total"),
		unfinished:   reg.Counter("wire_sessions_unfinished_total"),
		violations:   reg.Counter("wire_safety_violations_total"),
		retransmits:  reg.Counter("wire_retransmits_total"),
		retransmitIvl: reg.Histogram("wire_retransmit_interval_seconds",
			obs.DurationBuckets),
		goodput:          reg.Histogram("wire_session_goodput_items_per_sec", GoodputBuckets),
		learn:            reg.Histogram("wire_session_learn_time_seconds", obs.DurationBuckets),
		stabIncarnations: reg.Counter("wire_stabilize_incarnations_total"),
		stabBadWrites:    reg.Counter("wire_stabilize_bad_writes_total"),
		stabPostViol:     reg.Counter("wire_stabilize_post_violations_total"),
		stabEscalations:  reg.Counter("wire_stabilize_watchdog_escalations_total"),
		stabTime:         reg.Histogram("wire_stabilize_time_seconds", obs.DurationBuckets),
		reg:              reg,
	}
}

// sessionStarted / sessionEnded maintain the active-session gauge.
func (m *muxMetrics) sessionStarted() { m.active.Set(float64(m.activeN.Add(1))) }
func (m *muxMetrics) sessionEnded()   { m.active.Set(float64(m.activeN.Add(-1))) }

// NewMux builds a mux over tr with default configuration (event-loop
// engine, unsampled events) and starts its goroutines. reg may be nil
// (the obs nil-sink).
func NewMux(tr Transport, reg *obs.Registry) *Mux {
	return NewMuxConfig(tr, MuxConfig{Obs: reg})
}

// NewMuxConfig builds a mux over tr per cfg and starts its router and
// flusher goroutines, plus the engine's workers (event loop) — the
// goroutine engine's pacer starts lazily on first subscription.
func NewMuxConfig(tr Transport, cfg MuxConfig) *Mux {
	m := &Mux{
		tr:          tr,
		met:         newMuxMetrics(cfg.Obs),
		engine:      cfg.Engine,
		sampleEvery: cfg.EventSampleEvery,
		pacer:       newPacer(),
	}
	empty := make([]sessionEntry, 0)
	for s := range m.shards {
		m.shards[s].list.Store(&empty)
	}
	m.out[SenderEnd-1].init()
	m.out[ReceiverEnd-1].init()
	if m.engine == EngineLoop {
		m.loop = newLoopEngine(m, cfg.LoopWorkers)
	}
	m.flusherWg.Add(2)
	go m.flush(SenderEnd)
	go m.flush(ReceiverEnd)
	m.routerWg.Add(2)
	go m.route(SenderEnd)
	go m.route(ReceiverEnd)
	return m
}

// Transport returns the mux's transport.
func (m *Mux) Transport() Transport { return m.tr }

// Engine returns the mux's session executor.
func (m *Mux) Engine() Engine { return m.engine }

// sampled reports whether per-session lifecycle events should be
// emitted for this session id (see MuxConfig.EventSampleEvery).
func (m *Mux) sampled(id uint64) bool {
	return m.sampleEvery <= 1 || id%m.sampleEvery == 0
}

// noteSessionStart folds a session start into the metrics and, when the
// id is sampled, the event ring.
func (m *Mux) noteSessionStart(s *Session) {
	m.met.sessionStarted()
	if m.sampled(s.cfg.ID) {
		m.met.reg.Emit("wire.session.start",
			"session", strconv.FormatUint(s.cfg.ID, 10),
			"items", strconv.Itoa(len(s.cfg.Input)))
	}
}

// noteSessionEnd folds a finished session's outcome into the aggregate
// metrics (always exact) and, when the id is sampled, the event ring.
func (m *Mux) noteSessionEnd(s *Session, rep Report) {
	met := m.met
	met.retransmits.Add(int64(s.retransmits))
	for _, t := range s.learnTimes {
		met.learn.Observe(t.Seconds())
	}
	met.goodput.Observe(rep.GoodputItemsPerSec)
	switch {
	case rep.SafetyViolation != nil:
		// counted when detected, in noteViolation
	case rep.Complete:
		met.completed.Inc()
	default:
		met.unfinished.Inc()
	}
	if m.sampled(s.cfg.ID) {
		met.reg.Emit("wire.session.end",
			"session", strconv.FormatUint(s.cfg.ID, 10),
			"complete", strconv.FormatBool(rep.Complete),
			"frames_tx", strconv.Itoa(rep.FramesTx))
	}
	met.sessionEnded()
}

// noteViolation records a prefix-safety violation. Violations are never
// sampled away: each one is a counter increment and an event.
func (m *Mux) noteViolation(s *Session) {
	m.met.violations.Inc()
	m.met.reg.Emit("wire.safety.violation",
		"session", strconv.FormatUint(s.cfg.ID, 10),
		"output", s.output.String())
}

// register adds a session to the routing table: a slot store in the
// dense table for ordinary ids, a copy-on-write rebuild in the overflow
// shards otherwise. The dense path is what keeps registering a million
// sessions linear — the old all-shards copy-on-write rebuild was
// O(fleet) per registration, O(fleet²/shards) for a fleet.
func (m *Mux) register(s *Session) error {
	id := s.cfg.ID
	if id < denseLimit {
		m.denseMu.Lock()
		defer m.denseMu.Unlock()
		tbl := m.dense.Load()
		if tbl == nil || uint64(len(*tbl)) <= id {
			n := uint64(denseSeed)
			if tbl != nil {
				n = uint64(len(*tbl))
			}
			for n <= id {
				n <<= 1
			}
			next := make([]atomic.Pointer[Session], n)
			if tbl != nil {
				// Slot-by-slot atomic copy: concurrent lookups read the
				// old table until the pointer swap publishes the new one.
				for i := range *tbl {
					next[i].Store((*tbl)[i].Load())
				}
			}
			m.dense.Store(&next)
			tbl = &next
		}
		if (*tbl)[id].Load() != nil {
			return fmt.Errorf("wire: duplicate session id %d", id)
		}
		(*tbl)[id].Store(s)
		return nil
	}
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.list.Load()
	for _, e := range old {
		if e.id == id {
			return fmt.Errorf("wire: duplicate session id %d", id)
		}
	}
	next := make([]sessionEntry, len(old), len(old)+1)
	copy(next, old)
	next = append(next, sessionEntry{id: id, s: s})
	sh.list.Store(&next)
	return nil
}

// unregister removes a finished session; late frames for it count as
// unknown-session drops.
func (m *Mux) unregister(id uint64) {
	if id < denseLimit {
		m.denseMu.Lock()
		defer m.denseMu.Unlock()
		if tbl := m.dense.Load(); tbl != nil && id < uint64(len(*tbl)) {
			(*tbl)[id].Store(nil)
		}
		return
	}
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.list.Load()
	next := make([]sessionEntry, 0, len(old))
	for _, e := range old {
		if e.id != id {
			next = append(next, e)
		}
	}
	sh.list.Store(&next)
}

// lookup finds a live session: a bounds check plus two atomic loads on
// the dense path, an atomic load plus a short scan on the overflow one.
func (m *Mux) lookup(id uint64) *Session {
	if id < denseLimit {
		if tbl := m.dense.Load(); tbl != nil && id < uint64(len(*tbl)) {
			return (*tbl)[id].Load()
		}
		return nil
	}
	for _, e := range *m.shard(id).list.Load() {
		if e.id == id {
			return e.s
		}
	}
	return nil
}

// send encodes one protocol message straight into the end's outbox — an
// append under a short lock, no allocation, no transport call; the
// flusher ships it with the rest of the burst. A full outbox drops the
// frame (counted), like every other saturated hop.
func (m *Mux) send(id uint64, dir channel.Dir, mg msg.Msg) error {
	from := SenderEnd
	tx := m.met.txSToR
	if dir == channel.RToS {
		from = ReceiverEnd
		tx = m.met.txRToS
	}
	ob := &m.out[from-1]
	if ob.closed.Load() {
		return ErrClosed
	}
	// bound is a worst-case encoded size for this frame: header(2) +
	// session varint(<=10) + dir(1) + payload length varint(<=3) +
	// payload + checksum(4).
	bound := batchLenPrefix + 20 + len(mg)
	if batchHeaderLen+bound > blobCap {
		// The message cannot fit any chunk — put the lone frame on the
		// wire directly. Rare (a near-64KB payload), so the allocation
		// does not matter.
		if err := m.tr.Send(from, EncodeFrame(Frame{Session: id, Dir: dir, Msg: mg})); err != nil {
			return err
		}
		tx.Inc()
		return nil
	}
	st := &ob.stripes[(id*fibMul)>>(64-outboxStripeBits)]
	st.mu.Lock()
	if len(st.cur.ends) >= maxBatchFrames || len(st.cur.buf)+bound > blobCap {
		st.mu.Unlock()
		m.met.outboxFull.Inc()
		return nil
	}
	pfx := len(st.cur.buf)
	st.cur.buf = append(st.cur.buf, 0, 0, 0) // length slot, patched below
	st.cur.buf = AppendFrame(st.cur.buf, Frame{Session: id, Dir: dir, Msg: mg})
	putPaddedUvarint(st.cur.buf[pfx:pfx+batchLenPrefix], uint64(len(st.cur.buf)-pfx-batchLenPrefix))
	st.cur.ends = append(st.cur.ends, len(st.cur.buf))
	first := len(st.cur.ends) == 1
	st.mu.Unlock()
	if first {
		select {
		case ob.notify <- struct{}{}:
		default:
		}
	}
	// tx is counted by the flusher, one Add per chunk, when the frames
	// actually go to the transport.
	return nil
}

// flush is one end's outbox flusher: swap each non-empty stripe's
// accumulating chunk for its drained spare and put the burst on the
// wire. A blobSender transport takes each chunk as-is — the accumulated
// batch blob changes hands with zero copies and the stripe gets a fresh
// pooled buffer. Other transports get per-frame views sliced from the
// chunks, shipped in one sendFrames call. Runs until the outbox is
// closed and drained.
func (m *Mux) flush(from End) {
	defer m.flusherWg.Done()
	ob := &m.out[from-1]
	tx := m.met.txSToR
	if from == ReceiverEnd {
		tx = m.met.txRToS
	}
	blobTr, _ := m.tr.(blobSender)
	views := make([][]byte, 0, 512)
	drained := make([]*outChunk, 0, outboxStripeCount)
	for {
		views = views[:0]
		drained = drained[:0]
		var err error
		sent := false
		for i := range ob.stripes {
			st := &ob.stripes[i]
			st.mu.Lock()
			if len(st.cur.ends) == 0 {
				st.mu.Unlock()
				continue
			}
			ch := st.cur
			st.cur, st.spare = st.spare, ch
			st.mu.Unlock()
			if blobTr != nil {
				n := len(ch.ends)
				m.met.batchFrames.Observe(float64(n))
				tx.Add(int64(n))
				patchBatchCount(ch.buf, n)
				err = blobTr.sendBlob(from, ch.buf, n)
				ch.buf = seedBatchBlob(getBuf(blobCap)) // ownership moved with the blob
				ch.ends = ch.ends[:0]
				sent = true
				if err != nil {
					break
				}
				continue
			}
			start := batchHeaderLen
			for _, e := range ch.ends {
				views = append(views, ch.buf[start+batchLenPrefix:e])
				start = e
			}
			drained = append(drained, ch)
		}
		if len(views) > 0 {
			m.met.batchFrames.Observe(float64(len(views)))
			tx.Add(int64(len(views)))
			err = sendFrames(m.tr, from, views)
			for _, ch := range drained {
				ch.buf, ch.ends = ch.buf[:batchHeaderLen], ch.ends[:0]
			}
			sent = true
		}
		if err != nil {
			// Transport closed under us: refuse further sends so the
			// session loops see ErrClosed and shut down.
			ob.closed.Store(true)
			return
		}
		if sent {
			continue
		}
		if ob.closed.Load() {
			return
		}
		<-ob.notify
	}
}

// routeSink accumulates one router's per-frame effects across a blob so
// the hot loop touches no shared counters and publishes each inbox once:
// plain local increments per frame, then one flush per blob (atomic
// counter Adds for the non-zero tallies, one tail publish per dirty
// inbox, one ready-queue schedule per dirty loop-engine session).
type routeSink struct {
	dirty                                     []*inbox
	rx, decodeErrs, alien, unknown, inboxFull int64
}

// flush publishes the dirty inboxes, wakes their sessions' event-loop
// workers, and folds the tallies into the mux metrics. rx is the
// arriving-direction receive counter.
func (k *routeSink) flush(m *Mux, rx *obs.Counter) {
	for i, q := range k.dirty {
		q.publish()
		if o := q.owner; o.loopLive.Load() {
			o.worker.schedule(o)
		}
		k.dirty[i] = nil
	}
	k.dirty = k.dirty[:0]
	if k.rx > 0 {
		rx.Add(k.rx)
	}
	if k.decodeErrs > 0 {
		m.met.decodeErrors.Add(k.decodeErrs)
	}
	if k.alien > 0 {
		m.met.alien.Add(k.alien)
	}
	if k.unknown > 0 {
		m.met.unknown.Add(k.unknown)
	}
	if k.inboxFull > 0 {
		m.met.inboxFull.Add(k.inboxFull)
	}
	k.rx, k.decodeErrs, k.alien, k.unknown, k.inboxFull = 0, 0, 0, 0, 0
}

// route is one end's router goroutine: split batch blobs, decode each
// frame in place, validate, dispatch. It exits when the transport's Recv
// channel closes.
func (m *Mux) route(at End) {
	defer m.routerWg.Done()
	rx := m.met.rxSToR
	if at == SenderEnd {
		rx = m.met.rxRToS
	}
	wantDir := at.Opposite().Dir() // frames arriving here were sent by the opposite end
	var v FrameView
	sink := &routeSink{dirty: make([]*inbox, 0, 64)}
	dispatch := func(frame []byte) error {
		m.dispatch(at, wantDir, sink, frame, &v)
		return nil
	}
	for raw := range m.tr.Recv(at) {
		if IsBatch(raw) {
			if err := SplitBatch(raw, dispatch); err != nil {
				sink.decodeErrs++
			}
		} else {
			m.dispatch(at, wantDir, sink, raw, &v)
		}
		sink.flush(m, rx)
		ReleaseBuf(raw)
	}
}

// dispatch validates one encoded frame and stages its message into the
// owning session's inbox (the router publishes staged inboxes once per
// blob via the sink). The frame bytes are only borrowed: the payload is
// either canonicalized against the session's alphabet (interned, no
// copy) or copied into an owned Msg before the buffer goes back to the
// pool.
func (m *Mux) dispatch(at End, wantDir channel.Dir, sink *routeSink, frame []byte, v *FrameView) {
	if err := DecodeFrameInto(v, frame); err != nil {
		sink.decodeErrs++
		return
	}
	if v.Dir != wantDir {
		sink.alien++
		return
	}
	s := m.lookup(v.Session)
	if s == nil {
		sink.unknown++
		return
	}
	// Alphabet enforcement: a frame whose payload is outside the session's
	// declared alphabet for this direction is alien — the live analogue of
	// Link.Send's M^S/M^R check, applied on receive because the wire
	// (impairment, another session's corruption substitute) may have
	// swapped payloads after the honest send. Membership is checked with
	// Alphabet.Canonical, which doubles as interning: an in-alphabet
	// payload becomes an owned Msg without allocating. A one-entry cache
	// in front of it makes back-to-back repeats (retransmissions, the
	// dominant STP traffic) a plain byte compare.
	alp := s.receiverAlphabet
	q := s.senderInbox
	ce := &s.rxCache[1]
	if at == ReceiverEnd {
		alp = s.senderAlphabet
		q = s.receiverInbox
		ce = &s.rxCache[0]
	}
	var mg msg.Msg
	if len(ce.raw) > 0 && bytes.Equal(ce.raw, v.Payload) {
		mg = ce.mg
	} else {
		if alp.Size() > 0 {
			var ok bool
			if mg, ok = alp.Canonical(v.Payload); !ok {
				sink.alien++
				return
			}
		} else {
			mg = msg.Msg(v.Payload) // copies: the payload aliases a pooled buffer
		}
		ce.raw = append(ce.raw[:0], v.Payload...)
		ce.mg = mg
	}
	switch q.stage(mg) {
	case pushOK:
		sink.rx++
		if !q.dirty {
			q.dirty = true
			sink.dirty = append(sink.dirty, q)
		}
	case pushClosed:
		// Session finished while we held the frame: count it as late.
		sink.unknown++
	default:
		sink.inboxFull++
		s.inboxDrops.Add(1)
	}
}

// Close flushes and stops the outboxes, closes the transport, waits for
// the routers to drain, and stops the engine — the loop workers finish
// any still-attached sessions so no Run or Serve caller hangs.
func (m *Mux) Close() error {
	for i := range m.out {
		ob := &m.out[i]
		ob.closed.Store(true)
		select {
		case ob.notify <- struct{}{}:
		default:
		}
	}
	m.flusherWg.Wait()
	m.pacer.close()
	err := m.tr.Close()
	m.routerWg.Wait()
	if m.loop != nil {
		m.loop.close()
	}
	return err
}
