package wire

import (
	"fmt"
	"sync"
	"sync/atomic"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/obs"
)

// Mux multiplexes many sessions over one Transport: it encodes outbound
// protocol messages into frames, decodes and routes inbound frames to the
// owning session's inbox, and drops (with a counted cause) anything that
// does not parse, does not belong to a live session, or falls outside the
// session's declared alphabet — the live analogue of the Link's alphabet
// enforcement.
type Mux struct {
	tr  Transport
	met *muxMetrics

	mu       sync.RWMutex
	sessions map[uint64]*Session

	wg sync.WaitGroup
}

// muxMetrics bundles the obs handles, resolved once at mux creation (the
// nil-registry fast path makes every update a no-op).
type muxMetrics struct {
	txSToR, txRToS *obs.Counter
	rxSToR, rxRToS *obs.Counter
	decodeErrors   *obs.Counter
	alien          *obs.Counter
	unknown        *obs.Counter
	inboxFull      *obs.Counter

	activeN     atomic.Int64
	active      *obs.Gauge
	completed   *obs.Counter
	unfinished  *obs.Counter
	violations  *obs.Counter
	retransmits *obs.Counter
	goodput     *obs.Histogram
	learn       *obs.Histogram

	reg *obs.Registry
}

// GoodputBuckets is the bucket ladder for per-session goodput
// (items/second): live sessions pace in milliseconds, so the ladder spans
// sub-1 to tens of thousands of items per second.
var GoodputBuckets = obs.ExpBuckets(0.5, 2, 16)

func newMuxMetrics(reg *obs.Registry) *muxMetrics {
	return &muxMetrics{
		txSToR:       reg.Counter(`wire_frames_tx_total{dir="s_to_r"}`),
		txRToS:       reg.Counter(`wire_frames_tx_total{dir="r_to_s"}`),
		rxSToR:       reg.Counter(`wire_frames_rx_total{dir="s_to_r"}`),
		rxRToS:       reg.Counter(`wire_frames_rx_total{dir="r_to_s"}`),
		decodeErrors: reg.Counter("wire_decode_errors_total"),
		alien:        reg.Counter(`wire_frames_dropped_total{cause="alien"}`),
		unknown:      reg.Counter(`wire_frames_dropped_total{cause="unknown_session"}`),
		inboxFull:    reg.Counter(`wire_frames_dropped_total{cause="inbox_full"}`),
		active:       reg.Gauge("wire_sessions_active"),
		completed:    reg.Counter("wire_sessions_completed_total"),
		unfinished:   reg.Counter("wire_sessions_unfinished_total"),
		violations:   reg.Counter("wire_safety_violations_total"),
		retransmits:  reg.Counter("wire_retransmits_total"),
		goodput:      reg.Histogram("wire_session_goodput_items_per_sec", GoodputBuckets),
		learn:        reg.Histogram("wire_session_learn_time_seconds", obs.DurationBuckets),
		reg:          reg,
	}
}

// sessionStarted / sessionEnded maintain the active-session gauge.
func (m *muxMetrics) sessionStarted() { m.active.Set(float64(m.activeN.Add(1))) }
func (m *muxMetrics) sessionEnded()   { m.active.Set(float64(m.activeN.Add(-1))) }

// NewMux builds a mux over tr and starts its two router goroutines. reg
// may be nil (the obs nil-sink).
func NewMux(tr Transport, reg *obs.Registry) *Mux {
	m := &Mux{
		tr:       tr,
		met:      newMuxMetrics(reg),
		sessions: make(map[uint64]*Session),
	}
	m.wg.Add(2)
	go m.route(SenderEnd)
	go m.route(ReceiverEnd)
	return m
}

// Transport returns the mux's transport.
func (m *Mux) Transport() Transport { return m.tr }

// register adds a session to the routing table.
func (m *Mux) register(s *Session) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sessions[s.cfg.ID]; dup {
		return fmt.Errorf("wire: duplicate session id %d", s.cfg.ID)
	}
	m.sessions[s.cfg.ID] = s
	return nil
}

// unregister removes a finished session; late frames for it count as
// unknown-session drops.
func (m *Mux) unregister(id uint64) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// lookup finds a live session.
func (m *Mux) lookup(id uint64) *Session {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.sessions[id]
}

// send encodes one protocol message and puts it on the wire. Callers are
// the session step loops; the buffer is per-call (frames are tiny).
func (m *Mux) send(id uint64, dir channel.Dir, mg msg.Msg) error {
	frame := EncodeFrame(Frame{Session: id, Dir: dir, Msg: mg})
	from := SenderEnd
	tx := m.met.txSToR
	if dir == channel.RToS {
		from = ReceiverEnd
		tx = m.met.txRToS
	}
	if err := m.tr.Send(from, frame); err != nil {
		return err
	}
	tx.Inc()
	return nil
}

// route is one end's router goroutine: decode, validate, dispatch. It
// exits when the transport's Recv channel closes.
func (m *Mux) route(at End) {
	defer m.wg.Done()
	rx := m.met.rxSToR
	if at == SenderEnd {
		rx = m.met.rxRToS
	}
	wantDir := at.Opposite().Dir() // frames arriving here were sent by the opposite end
	for raw := range m.tr.Recv(at) {
		f, err := DecodeFrame(raw)
		if err != nil {
			m.met.decodeErrors.Inc()
			continue
		}
		if f.Dir != wantDir {
			m.met.alien.Inc()
			continue
		}
		s := m.lookup(f.Session)
		if s == nil {
			m.met.unknown.Inc()
			continue
		}
		// Alphabet enforcement: a frame whose payload is outside the
		// session's declared alphabet for this direction is alien — the
		// live analogue of Link.Send's M^S/M^R check, applied on receive
		// because the wire (impairment, another session's corruption
		// substitute) may have swapped payloads after the honest send.
		var inbox chan msg.Msg
		if at == ReceiverEnd {
			if alp := s.senderAlphabet; alp.Size() > 0 && !alp.Contains(f.Msg) {
				m.met.alien.Inc()
				continue
			}
			inbox = s.receiverInbox
		} else {
			if alp := s.receiverAlphabet; alp.Size() > 0 && !alp.Contains(f.Msg) {
				m.met.alien.Inc()
				continue
			}
			inbox = s.senderInbox
		}
		select {
		case inbox <- f.Msg:
			rx.Inc()
		case <-s.stopped:
			// Session finished while we held the frame: count it as late.
			m.met.unknown.Inc()
		default:
			m.met.inboxFull.Inc()
		}
	}
}

// Close closes the transport and waits for the routers to drain.
func (m *Mux) Close() error {
	err := m.tr.Close()
	m.wg.Wait()
	return err
}
