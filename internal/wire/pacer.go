package wire

import (
	"sync"
	"time"
)

// pacer multiplexes every session's spontaneous-step pacing onto one
// timer goroutine. Each subscriber gets a cap-1 tick channel; the pacer
// fires due subscribers non-blockingly (a busy loop coalesces missed
// ticks, exactly like a time.Ticker's buffered channel) and sleeps until
// the earliest next deadline. At 64 sessions this replaces 128 runtime
// timers with one.
type pacerSub struct {
	ch       chan struct{}
	interval time.Duration
	next     time.Time
}

type pacer struct {
	mu   sync.Mutex
	subs map[*pacerSub]struct{}
	// wake nudges the loop when a new subscriber may have an earlier
	// deadline than the current sleep.
	wake chan struct{}
	done chan struct{}
	once sync.Once
	// startOnce launches the timer goroutine on first subscription, so
	// a mux whose engine never subscribes (the event-loop engine paces
	// through its workers' timer heaps) costs no pacer goroutine.
	startOnce sync.Once
}

func newPacer() *pacer {
	return &pacer{
		subs: make(map[*pacerSub]struct{}),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// subscribe registers a tick stream with the given interval, starting
// the timer goroutine on first use. The first tick arrives one interval
// from now.
func (p *pacer) subscribe(interval time.Duration) *pacerSub {
	p.startOnce.Do(func() { go p.run() })
	s := &pacerSub{
		ch:       make(chan struct{}, 1),
		interval: interval,
		next:     time.Now().Add(interval),
	}
	p.mu.Lock()
	p.subs[s] = struct{}{}
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return s
}

// unsubscribe removes s; its channel simply stops firing.
func (p *pacer) unsubscribe(s *pacerSub) {
	p.mu.Lock()
	delete(p.subs, s)
	p.mu.Unlock()
}

// run is the timer loop. It exits when close is called.
func (p *pacer) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Now()
		var earliest time.Time
		p.mu.Lock()
		for s := range p.subs {
			if !s.next.After(now) {
				select {
				case s.ch <- struct{}{}:
				default:
				}
				s.next = now.Add(s.interval)
			}
			if earliest.IsZero() || s.next.Before(earliest) {
				earliest = s.next
			}
		}
		p.mu.Unlock()
		sleep := time.Hour
		if !earliest.IsZero() {
			if sleep = time.Until(earliest); sleep < 0 {
				sleep = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(sleep)
		select {
		case <-p.done:
			return
		case <-p.wake:
		case <-timer.C:
		}
	}
}

// close stops the loop. Idempotent.
func (p *pacer) close() { p.once.Do(func() { close(p.done) }) }
