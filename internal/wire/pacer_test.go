package wire

import (
	"sync"
	"testing"
	"time"
)

// TestPacerChurn hammers subscribe/unsubscribe from many goroutines
// while the timer loop runs — the supervisor pattern, where every
// incarnation's loops re-subscribe. Meant for -race: the shared pacer
// must tolerate rapid session churn without losing its loop or leaking
// subscribers.
func TestPacerChurn(t *testing.T) {
	p := newPacer()
	go p.run()
	defer p.close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sub := p.subscribe(time.Duration(50+10*g) * time.Microsecond)
				if i%3 == 0 {
					// Sometimes wait for a tick, sometimes churn straight
					// through — both orders must be safe.
					select {
					case <-sub.ch:
					case <-time.After(5 * time.Millisecond):
					}
				}
				p.unsubscribe(sub)
			}
		}(g)
	}
	wg.Wait()
	p.mu.Lock()
	leaked := len(p.subs)
	p.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d subscribers leaked after churn", leaked)
	}
	// The loop must still be alive: a fresh subscriber ticks.
	sub := p.subscribe(100 * time.Microsecond)
	defer p.unsubscribe(sub)
	select {
	case <-sub.ch:
	case <-time.After(5 * time.Second):
		t.Fatal("pacer stopped ticking after churn")
	}
}
