package wire

import "sync"

// Buffer pooling for the data plane. Two size classes cover everything
// the hot path handles: small buffers for single frames (alphabet
// payloads are tiny) and blob buffers for batch datagrams. Steady-state
// send/receive recycles these instead of allocating, so the per-frame
// cost is an append into warm memory rather than a malloc + GC sweep.
//
// Ownership contract: a buffer obtained from the pool is owned by exactly
// one holder at a time. Transports put frames they received onto their
// Recv channels; the consumer (the mux's router) releases them once the
// frames are dispatched. Code outside the hot path (tests draining Recv
// directly) may simply drop buffers — the pool tolerates non-return, it
// just falls back to allocating.
const (
	// smallBufCap comfortably holds any single frame: header, a
	// maximum-length session varint, and a typical alphabet payload.
	smallBufCap = 256
	// blobCap holds one maximum batch datagram (the UDP payload limit).
	blobCap = 64 * 1024
)

// The pools hold array pointers, not slice headers: an array pointer
// stores directly in the pool's interface slot and slices back out with
// plain pointer arithmetic, so a get/put cycle is allocation-free. A
// *[]byte box, by contrast, escapes on every Put — one hidden allocation
// per recycled buffer, which on the UDP read loop was the last malloc on
// the path.
var smallBufPool = sync.Pool{
	New: func() any { return new([smallBufCap]byte) },
}

var blobPool = sync.Pool{
	New: func() any { return new([blobCap]byte) },
}

// getBuf returns an empty pooled buffer with capacity for at least n
// bytes. Requests beyond blobCap fall back to a plain allocation (such
// buffers are silently dropped by putBuf).
func getBuf(n int) []byte {
	switch {
	case n <= smallBufCap:
		return smallBufPool.Get().(*[smallBufCap]byte)[:0]
	case n <= blobCap:
		return blobPool.Get().(*[blobCap]byte)[:0]
	default:
		return make([]byte, 0, n)
	}
}

// putBuf returns a buffer obtained from getBuf to its pool. Buffers whose
// capacity matches neither class (grown by append, or oversized) are
// dropped for the GC.
func putBuf(b []byte) {
	switch cap(b) {
	case smallBufCap:
		smallBufPool.Put((*[smallBufCap]byte)(b[:smallBufCap]))
	case blobCap:
		blobPool.Put((*[blobCap]byte)(b[:blobCap]))
	}
}
