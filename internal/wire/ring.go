package wire

import (
	"sync/atomic"

	"seqtx/internal/msg"
)

// inbox is a session's bounded inbound message queue, built as a
// single-producer/single-consumer ring: exactly one router goroutine
// pushes into each inbox (the receiver inbox is fed only by the
// receiver-end router, the sender inbox only by the sender-end router)
// and exactly one session loop drains it. That invariant lets both sides
// run lock-free — a push is two atomic loads, a slot store, and an
// atomic publish; a drain is one pass over the published slots. The
// notify channel carries at most one wakeup token, and push only offers
// it when the consumer has declared itself asleep via the sleeping flag
// (Dekker-style: the consumer sets sleeping, then re-drains once before
// blocking, so a push either lands in that final drain or sees the flag
// and sends the token). A busy consumer therefore costs the producer one
// predictable atomic load per push, not a channel operation.
type inbox struct {
	slots []msg.Msg // len is a power of two
	mask  uint64

	// owner is the session this inbox feeds. The routers use it after a
	// publish to wake the session's event-loop worker (a no-op while
	// the goroutine engine, or nobody, is driving the session).
	owner *Session

	head   atomic.Uint64 // next slot to read (consumer-owned)
	tail   atomic.Uint64 // next slot to write (producer-owned)
	closed atomic.Bool

	// stagedTail and dirty are plain producer-owned fields backing the
	// stage/publish split: stage writes slots and advances stagedTail
	// without publishing, publish folds the staged run into tail with one
	// atomic store. Batching the publish matters because an atomic store
	// is a full fence (XCHG on amd64) — paying it once per burst instead
	// of once per message is one of the data plane's larger savings.
	stagedTail uint64
	dirty      bool // set by the router while the inbox has staged messages

	// sleeping is set by the consumer just before it blocks on notify
	// and cleared by whichever side wakes it.
	sleeping atomic.Bool
	notify   chan struct{}
}

// push outcomes, mapped to the mux's drop-cause counters.
type pushResult int

const (
	pushOK pushResult = iota
	pushFull
	pushClosed
)

func newInbox(limit int) *inbox {
	size := 1
	for size < limit {
		size <<= 1
	}
	return &inbox{
		slots:  make([]msg.Msg, size),
		mask:   uint64(size - 1),
		notify: make(chan struct{}, 1),
	}
}

// push appends m for the consumer and publishes it immediately. A full
// inbox drops (the live analogue of channel loss); a closed inbox means
// the session already finished. Only the owning router goroutine may
// call push.
func (q *inbox) push(m msg.Msg) pushResult {
	r := q.stage(m)
	if r == pushOK {
		q.publish()
	}
	return r
}

// stage writes m into the next free slot without making it visible to
// the consumer; a later publish releases the whole staged run at once.
// Only the owning router goroutine may call stage, and it must pair
// every staged run with a publish before blocking.
func (q *inbox) stage(m msg.Msg) pushResult {
	if q.closed.Load() {
		return pushClosed
	}
	t := q.stagedTail
	if t-q.head.Load() >= uint64(len(q.slots)) {
		return pushFull
	}
	q.slots[t&q.mask] = m
	q.stagedTail = t + 1
	return pushOK
}

// publish makes every staged message visible to the consumer and wakes
// it if it declared itself asleep. It also clears the producer's dirty
// mark.
func (q *inbox) publish() {
	q.dirty = false
	if q.stagedTail == q.tail.Load() {
		return
	}
	q.tail.Store(q.stagedTail) // publishes the slot writes to the consumer
	if q.sleeping.Load() {
		q.sleeping.Store(false)
		select {
		case q.notify <- struct{}{}:
		default:
		}
	}
}

// drain moves every published message into dst (reusing its capacity)
// and frees the slots. Only the consuming session loop may call drain.
func (q *inbox) drain(dst []msg.Msg) []msg.Msg {
	dst = dst[:0]
	h := q.head.Load()
	t := q.tail.Load()
	for ; h != t; h++ {
		dst = append(dst, q.slots[h&q.mask])
	}
	q.head.Store(h) // releases the slots back to the producer
	return dst
}

// arm declares the consumer about to block: it sets the sleeping flag
// and reports whether the queue is still empty afterwards. The consumer
// must call arm and get true before waiting on notify; if arm returns
// false there are messages to drain and the consumer must not block.
// The set-then-recheck order closes the race with a concurrent push:
// the push either published its message before the recheck (arm returns
// false) or observes the flag and sends the wakeup token.
func (q *inbox) arm() bool {
	q.sleeping.Store(true)
	if q.head.Load() != q.tail.Load() {
		q.sleeping.Store(false)
		return false
	}
	return true
}

// close marks the inbox closed; later pushes report pushClosed (counted
// by the routers as late frames).
func (q *inbox) close() { q.closed.Store(true) }
