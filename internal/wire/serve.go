package wire

import (
	"context"
	"fmt"
	"sync"

	"seqtx/internal/obs"
)

// ServeConfig describes a fleet of sessions over one transport.
type ServeConfig struct {
	// Transport carries all sessions' frames; Serve closes it when the
	// last session ends.
	Transport Transport
	// Sessions are the transfers to run concurrently.
	Sessions []SessionConfig
	// Obs receives the wire metrics and events (nil = no-op sink).
	Obs *obs.Registry
}

// Serve multiplexes every configured session over the transport, runs
// them all concurrently, and returns their reports (index-aligned with
// cfg.Sessions). It shuts down gracefully: ctx cancellation (or a
// per-session deadline) ends the affected sessions, which report
// Complete=false; the transport and mux are always closed before Serve
// returns. The error covers setup failures only — per-session outcomes,
// including safety violations, live in the reports.
func Serve(ctx context.Context, cfg ServeConfig) ([]Report, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("wire: serve needs a transport")
	}
	if len(cfg.Sessions) == 0 {
		return nil, fmt.Errorf("wire: serve needs at least one session")
	}
	mux := NewMux(cfg.Transport, cfg.Obs)
	sessions := make([]*Session, len(cfg.Sessions))
	for i, sc := range cfg.Sessions {
		s, err := mux.NewSession(sc)
		if err != nil {
			mux.Close()
			return nil, err
		}
		sessions[i] = s
	}
	reports := make([]Report, len(sessions))
	var wg sync.WaitGroup
	wg.Add(len(sessions))
	for i, s := range sessions {
		go func(i int, s *Session) {
			defer wg.Done()
			reports[i] = s.Run(ctx)
		}(i, s)
	}
	wg.Wait()
	if err := mux.Close(); err != nil {
		return reports, fmt.Errorf("wire: closing transport: %w", err)
	}
	return reports, nil
}
