package wire

import (
	"context"
	"fmt"
	"sync"
	"time"

	"seqtx/internal/obs"
)

// ServeConfig describes a fleet of sessions over one transport.
type ServeConfig struct {
	// Transport carries all sessions' frames; Serve closes it when the
	// last session ends.
	Transport Transport
	// Sessions are the transfers to run concurrently.
	Sessions []SessionConfig
	// Obs receives the wire metrics and events (nil = no-op sink).
	Obs *obs.Registry
	// Engine selects the session executor (zero value: event loop).
	Engine Engine
	// LoopWorkers sizes the event-loop worker pool (0 = GOMAXPROCS).
	LoopWorkers int
	// EventSampleEvery samples per-session lifecycle events (see
	// MuxConfig.EventSampleEvery); 0 emits for every session.
	EventSampleEvery uint64
}

// Serve multiplexes every configured session over the transport, runs
// them all concurrently, and returns their reports (index-aligned with
// cfg.Sessions). On the event-loop engine the whole fleet runs on the
// mux's fixed worker pool — Serve adds no goroutines per session, which
// is what makes million-session fleets a flat-memory affair. It shuts
// down gracefully: ctx cancellation (or a per-session deadline) ends
// the affected sessions, which report Complete=false; the transport and
// mux are always closed before Serve returns. The error covers setup
// failures only — per-session outcomes, including safety violations,
// live in the reports.
func Serve(ctx context.Context, cfg ServeConfig) ([]Report, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("wire: serve needs a transport")
	}
	if len(cfg.Sessions) == 0 {
		return nil, fmt.Errorf("wire: serve needs at least one session")
	}
	mux := NewMuxConfig(cfg.Transport, MuxConfig{
		Obs:              cfg.Obs,
		Engine:           cfg.Engine,
		LoopWorkers:      cfg.LoopWorkers,
		EventSampleEvery: cfg.EventSampleEvery,
	})
	sessions := make([]*Session, len(cfg.Sessions))
	for i, sc := range cfg.Sessions {
		s, err := mux.NewSession(sc)
		if err != nil {
			mux.Close()
			return nil, err
		}
		sessions[i] = s
	}
	reports := make([]Report, len(sessions))
	var wg sync.WaitGroup
	wg.Add(len(sessions))
	if mux.engine == EngineLoop {
		// Event-loop fleet: hand every session to the worker pool with a
		// completion callback; one watcher goroutine total relays ctx
		// cancellation to the engine.
		ctxDeadline, hasCtxDeadline := ctx.Deadline()
		for i, s := range sessions {
			var deadlineAt time.Time
			if s.cfg.Deadline > 0 {
				deadlineAt = time.Now().Add(s.cfg.Deadline)
			}
			if hasCtxDeadline && (deadlineAt.IsZero() || ctxDeadline.Before(deadlineAt)) {
				deadlineAt = ctxDeadline
			}
			i := i
			mux.loop.start(s, deadlineAt, func(rep Report) {
				reports[i] = rep
				wg.Done()
			})
		}
		stopWatch := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				for _, s := range sessions {
					mux.loop.cancel(s)
				}
			case <-stopWatch:
			}
		}()
		wg.Wait()
		close(stopWatch)
	} else {
		for i, s := range sessions {
			go func(i int, s *Session) {
				defer wg.Done()
				reports[i] = s.Run(ctx)
			}(i, s)
		}
		wg.Wait()
	}
	if err := mux.Close(); err != nil {
		return reports, fmt.Errorf("wire: closing transport: %w", err)
	}
	return reports, nil
}
