package wire

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DefaultTick is the pacing interval used when SessionConfig.Tick is not
// positive: how often each process gets a spontaneous step (the live
// counterpart of the scheduler granting a tick — retransmissions hang off
// these).
const DefaultTick = time.Millisecond

// DefaultInboxSize buffers inbound messages per process when
// SessionConfig.InboxSize is not positive. A full inbox drops frames
// (counted per mux and per session), which the protocols tolerate as
// channel loss. 64 slots absorb a full stop-and-wait retransmission
// burst with room to spare while keeping a million idle sessions at
// ~2 KB of queue each; traffic-heavy fleets can raise it per session.
const DefaultInboxSize = 64

// SessionConfig describes one transfer session: a sender/receiver pair
// (typically from registry.Pair), the input tape to transmit, and pacing.
type SessionConfig struct {
	// ID is the session's wire identity; unique per mux.
	ID uint64
	// Sender and Receiver are the protocol processes this session hosts.
	Sender protocol.Sender
	// Receiver is R; its writes build the session's output tape.
	Receiver protocol.Receiver
	// Input is the tape X the sender was built from.
	Input seq.Seq
	// Tick is the spontaneous-step pacing for both processes
	// (DefaultTick when not positive).
	Tick time.Duration
	// Deadline, when positive, bounds the session's wall-clock life; an
	// expired session reports Complete=false (never a safety verdict).
	Deadline time.Duration
	// Seed feeds the session's deterministic jitter streams (retransmit
	// backoff, tick phase). Zero derives a per-session default from ID.
	Seed int64
	// InboxSize bounds each direction's inbound queue (rounded up to a
	// power of two; DefaultInboxSize when not positive). A full inbox
	// drops frames, surfaced in Report.InboxDrops.
	InboxSize int
	// Half, when non-zero, runs only that end's process locally: the
	// opposite process lives in a remote node reached through a
	// peer-addressed transport (wire.UDPPeer), which is how the cluster
	// runtime splits one session across machines. Both machine objects
	// are still required — the remote side's alphabet drives the
	// receive-side enforcement — but only the Half end's machine is ever
	// stepped here. A sender half completes when Sender.Done() reports
	// quiescence; a receiver half keeps the usual tape audit (it knows X
	// from the coordinator's seed). Zero runs both ends in-process.
	Half End
	// Stabilize, when non-nil, replaces the strict prefix audit with the
	// supervisor's suffix-alignment audit: transient bad writes after a
	// scrambled crash-restart are measured instead of fatal, and
	// completion means the audit reached aligned end-of-tape. Plain
	// (unsupervised) sessions leave it nil and keep the hard audit.
	Stabilize *StabilizeAudit
}

// Report is one session's outcome.
type Report struct {
	// ID is the session id.
	ID uint64
	// Input is the tape X given to the sender.
	Input seq.Seq
	// Output is the tape Y the receiver wrote.
	Output seq.Seq
	// Complete reports Y = X.
	Complete bool
	// SafetyViolation is the first "Y not a prefix of X" error, if any.
	SafetyViolation error
	// Elapsed is the session's wall-clock life (start to completion,
	// violation, or shutdown).
	Elapsed time.Duration
	// FramesTx counts sender→receiver frames put on the wire.
	FramesTx int
	// AcksTx counts receiver→sender frames put on the wire.
	AcksTx int
	// Retransmits counts consecutive re-sends of the same data message
	// (for stop-and-wait protocols, exactly the paper's retransmissions).
	Retransmits int
	// InboxDrops counts inbound frames dropped because this session's
	// inbox was full — the observable cost of a small InboxSize, which
	// the protocols absorb as channel loss.
	InboxDrops int
	// LearnTimes[i] is the wall-clock time at which Y first had length
	// i+1 — the live counterpart of the paper's t_i.
	LearnTimes []time.Duration
	// GoodputItemsPerSec is len(Output)/Elapsed.
	GoodputItemsPerSec float64
}

// Session is one live transfer: a sender and a receiver step machine
// exchanging frames through the mux. Which engine drives the machines
// is the mux's choice (MuxConfig.Engine): the event-loop engine runs
// both inline on the session's pinned worker; the goroutine engine
// dedicates a goroutine per machine. Either way each protocol state
// machine is touched by exactly one goroutine at a time, and inbound
// messages arrive through burst inboxes (one staged write per message,
// one publish per burst).
type Session struct {
	cfg SessionConfig
	mux *Mux

	senderAlphabet   msg.Alphabet
	receiverAlphabet msg.Alphabet

	senderInbox   *inbox
	receiverInbox *inbox

	// rxCache is a one-entry decode cache per inbound direction (index 0
	// feeds the receiver inbox, 1 the sender inbox), each owned
	// exclusively by the router goroutine on that end. STP traffic is
	// retransmission-heavy — the same data message or acknowledgement
	// arrives many times in a row — so remembering the last payload's
	// interned Msg turns the common repeat into a byte compare instead of
	// an alphabet-map probe.
	rxCache [2]struct {
		raw []byte
		mg  msg.Msg
	}

	// inboxDrops counts this session's inbox-full frame drops. Written
	// by the routers (either end's), read at report time — the only
	// session counter crossing goroutines, hence the only atomic one.
	inboxDrops atomic.Int64

	// Sender-machine state, touched only by the sender's driver (its
	// goroutine, or the session's pinned loop worker).
	bo               backoff
	last             msg.Msg
	haveLast         bool
	lastRetransmitAt time.Time

	// Outcome state, written by the step machines before the report is
	// built (the goroutine engine's WaitGroup or the loop worker's
	// single-threaded service is the happens-before edge).
	framesTx    int
	acksTx      int
	retransmits int
	output      seq.Seq
	learnTimes  []time.Duration
	violation   error
	complete    bool

	// Event-loop engine state. loopLive, scheduled, and cancelReq are
	// the only fields other goroutines touch while the loop runs the
	// session; everything else below is owned by the pinned worker
	// (start/deadline/tick fields are written once in loopEngine.start,
	// before the first schedule publishes them).
	loopLive  atomic.Bool
	scheduled atomic.Bool
	cancelReq atomic.Bool
	worker    *loopWorker

	start      time.Time
	deadlineAt time.Time
	tickNext   time.Time
	attached   bool
	finished   bool
	onDone     func(Report)
	rep        Report
	done       chan struct{}
}

// NewSession registers a session on the mux. The session does not run
// until Run is called (or, on the event-loop engine, until Serve or
// Run hands it to the loop).
func (m *Mux) NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Sender == nil || cfg.Receiver == nil {
		return nil, fmt.Errorf("wire: session %d missing processes", cfg.ID)
	}
	if cfg.Half != 0 && cfg.Half != SenderEnd && cfg.Half != ReceiverEnd {
		return nil, fmt.Errorf("wire: session %d bad half end %d", cfg.ID, int(cfg.Half))
	}
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1 // jitter stream still deterministic per session
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = DefaultInboxSize
	}
	s := &Session{
		cfg:              cfg,
		mux:              m,
		senderAlphabet:   cfg.Sender.Alphabet(),
		receiverAlphabet: cfg.Receiver.Alphabet(),
		senderInbox:      newInbox(cfg.InboxSize),
		receiverInbox:    newInbox(cfg.InboxSize),
		output:           make(seq.Seq, 0, len(cfg.Input)),
		learnTimes:       make([]time.Duration, 0, len(cfg.Input)),
	}
	s.senderInbox.owner = s
	s.receiverInbox.owner = s
	if err := m.register(s); err != nil {
		return nil, err
	}
	return s, nil
}

// runsSender / runsReceiver report which machines this process steps:
// both for an in-process session, exactly one for a cluster half.
func (s *Session) runsSender() bool   { return s.cfg.Half != ReceiverEnd }
func (s *Session) runsReceiver() bool { return s.cfg.Half != SenderEnd }

// senderFinished reports whether a sender half has completed: the local
// S transmitted its whole tape and holds every acknowledgement it
// needs. Full sessions always report false — their completion verdict
// belongs to the receiver's tape audit, here or on the remote node.
func (s *Session) senderFinished() bool {
	return s.cfg.Half == SenderEnd && s.cfg.Sender.Done()
}

// Run drives the session to completion, violation, deadline, or ctx
// cancellation, and returns its report. It must be called at most once.
func (s *Session) Run(ctx context.Context) Report {
	if s.mux.engine == EngineLoop {
		return s.runLoop(ctx)
	}
	return s.runGoroutine(ctx)
}

// runLoop hands the session to the mux's event-loop engine and waits
// for its report. Deadlines (SessionConfig.Deadline and any ctx
// deadline) collapse into one wall-clock instant carried in session
// state and enforced by the worker's timer heap — no context tower, no
// runtime timers, zero allocations beyond the completion channel.
func (s *Session) runLoop(ctx context.Context) Report {
	var deadlineAt time.Time
	if s.cfg.Deadline > 0 {
		deadlineAt = time.Now().Add(s.cfg.Deadline)
	}
	if d, ok := ctx.Deadline(); ok && (deadlineAt.IsZero() || d.Before(deadlineAt)) {
		deadlineAt = d
	}
	s.mux.loop.start(s, deadlineAt, nil)
	select {
	case <-s.done:
	case <-ctx.Done():
		s.mux.loop.cancel(s)
		<-s.done
	}
	return s.rep
}

// runGoroutine is the goroutine-pair engine: two blocking loops, one
// per step machine, joined by a WaitGroup.
func (s *Session) runGoroutine(ctx context.Context) Report {
	s.mux.noteSessionStart(s)
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s.start = time.Now()
	s.bo = newBackoff(s.cfg.Tick, s.cfg.Seed, s.start)
	var wg sync.WaitGroup
	if s.runsSender() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.senderLoop(ctx, cancel)
		}()
	}
	if s.runsReceiver() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.receiverLoop(ctx, cancel)
		}()
	}
	wg.Wait()
	// Closing the inboxes makes the routers count later frames as late.
	s.senderInbox.close()
	s.receiverInbox.close()
	s.mux.unregister(s.cfg.ID)
	rep := s.buildReport(time.Since(s.start))
	s.mux.noteSessionEnd(s, rep)
	return rep
}

// buildReport assembles the session's report from its outcome state.
func (s *Session) buildReport(elapsed time.Duration) Report {
	rep := Report{
		ID:              s.cfg.ID,
		Input:           s.cfg.Input.Clone(),
		Output:          s.output.Clone(),
		Complete:        s.complete,
		SafetyViolation: s.violation,
		Elapsed:         elapsed,
		FramesTx:        s.framesTx,
		AcksTx:          s.acksTx,
		Retransmits:     s.retransmits,
		InboxDrops:      int(s.inboxDrops.Load()),
		LearnTimes:      s.learnTimes,
	}
	if elapsed > 0 {
		rep.GoodputItemsPerSec = float64(len(rep.Output)) / elapsed.Seconds()
	}
	return rep
}

// senderEvent runs one sender step (a delivery or a spontaneous tick):
// protocol Step, retransmit bookkeeping, outbound sends, and backoff
// control. Spontaneous steps are paced by a capped exponential backoff
// instead of the raw tick: consecutive retransmissions double the
// interval (up to BackoffCapFactor ticks, ±25% seeded jitter), and any
// progress — a fresh send, or an acknowledgement the sender does not
// answer with a retransmission — resets it to the base tick. It
// returns false when the transport closed under the session.
func (s *Session) senderEvent(ev protocol.Event) bool {
	retrans, fresh := false, false
	for _, mg := range s.cfg.Sender.Step(ev) {
		if s.haveLast && mg == s.last {
			s.retransmits++
			retrans = true
			now := time.Now()
			if !s.lastRetransmitAt.IsZero() {
				s.mux.met.retransmitIvl.Observe(now.Sub(s.lastRetransmitAt).Seconds())
			}
			s.lastRetransmitAt = now
		} else {
			fresh = true
		}
		s.last, s.haveLast = mg, true
		s.framesTx++
		if err := s.mux.send(s.cfg.ID, SenderEnd.Dir(), mg); err != nil {
			return false // transport closed under us: shut down
		}
	}
	switch {
	case fresh, ev.Kind == protocol.Recv && !retrans:
		s.bo.reset()
	case retrans:
		s.bo.grow()
	}
	return true
}

// stepOutcome is receiverEvent's verdict on the session's life.
type stepOutcome int

const (
	// stepRunning: the session continues.
	stepRunning stepOutcome = iota
	// stepDone: the session ended on its merits — completion or a
	// safety violation, already recorded in session state.
	stepDone
	// stepClosed: the transport closed under the session.
	stepClosed
)

// receiverEvent runs one receiver step (a delivery or a tick): protocol
// Step, acknowledgement sends, and the write audit — strict prefix
// safety for plain sessions, the supervisor's suffix-alignment audit
// for stabilizing ones. It stops mid-burst on a verdict so no writes
// land after it.
func (s *Session) receiverEvent(ev protocol.Event) stepOutcome {
	sends, writes := s.cfg.Receiver.Step(ev)
	for _, mg := range sends {
		s.acksTx++
		if err := s.mux.send(s.cfg.ID, ReceiverEnd.Dir(), mg); err != nil {
			return stepClosed
		}
	}
	for _, item := range writes {
		s.output = append(s.output, item)
		s.learnTimes = append(s.learnTimes, time.Since(s.start))
		if a := s.cfg.Stabilize; a != nil {
			// Supervised session: the audit judges suffix alignment
			// across incarnations; done means aligned through the end
			// of the tape with no stabilization window open.
			if a.observe(item) {
				s.complete = true
				return stepDone
			}
			continue
		}
		if !s.output.IsPrefixOf(s.cfg.Input) {
			s.violation = fmt.Errorf(
				"wire: session %d safety violated: Y = %s is not a prefix of X = %s",
				s.cfg.ID, s.output, s.cfg.Input)
			s.mux.noteViolation(s)
			return stepDone
		}
	}
	if s.cfg.Stabilize == nil && len(s.output) == len(s.cfg.Input) {
		s.complete = true
		return stepDone
	}
	return stepRunning
}

// nextWake is the session's earliest pending timer: its next pacing
// tick, or its deadline if that comes first.
func (s *Session) nextWake() int64 {
	at := s.tickNext
	if !s.deadlineAt.IsZero() && s.deadlineAt.Before(at) {
		at = s.deadlineAt
	}
	return at.UnixNano()
}

// senderLoop drives S on the goroutine engine: retransmit ticks plus
// inbound acknowledgements, drained a burst at a time. The pacer fires
// at the base tick rate; non-due ticks (backoff) are skipped with one
// time comparison. On a sender half this loop also owns the session's
// ending: S's quiescence (Done) is completion, since no local receiver
// will ever reach end-of-tape.
func (s *Session) senderLoop(ctx context.Context, cancel context.CancelFunc) {
	sub := s.mux.pacer.subscribe(s.cfg.Tick)
	defer s.mux.pacer.unsubscribe(sub)
	// step runs one sender event and folds in the sender-half completion
	// check; false means this loop (and the session) is over.
	step := func(ev protocol.Event) bool {
		if !s.senderEvent(ev) {
			return false
		}
		if s.senderFinished() {
			s.complete = true
			cancel()
			return false
		}
		return true
	}
	// tick runs one spontaneous step if the backoff says it is due; the
	// step's own grow/reset lands before re-arming, so a retransmission's
	// doubled interval takes effect immediately.
	tick := func() bool {
		now := time.Now()
		if !s.bo.due(now) {
			return true
		}
		ok := step(protocol.TickEvent())
		s.bo.arm(now)
		return ok
	}
	batch := make([]msg.Msg, 0, 64)
	q := s.senderInbox
	for {
		// Non-blocking polls keep cancellation and retransmit ticks live
		// even when the inbox never goes empty.
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-sub.ch:
			if !tick() {
				return
			}
		default:
		}
		batch = q.drain(batch)
		if len(batch) == 0 {
			if !q.arm() {
				continue // a message landed between drain and arm
			}
			select {
			case <-ctx.Done():
				return
			case <-q.notify:
			case <-sub.ch:
				q.sleeping.Store(false)
				if !tick() {
					return
				}
			}
			continue
		}
		for _, m := range batch {
			if !step(protocol.RecvEvent(m)) {
				return
			}
		}
	}
}

// receiverLoop drives R on the goroutine engine: deliveries plus
// ticks; it ends the session on completion or violation.
func (s *Session) receiverLoop(ctx context.Context, cancel context.CancelFunc) {
	sub := s.mux.pacer.subscribe(s.cfg.Tick)
	defer s.mux.pacer.unsubscribe(sub)
	step := func(ev protocol.Event) bool {
		switch s.receiverEvent(ev) {
		case stepRunning:
			return true
		case stepDone:
			cancel()
		}
		return false
	}
	batch := make([]msg.Msg, 0, 64)
	q := s.receiverInbox
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-sub.ch:
			if !step(protocol.TickEvent()) {
				return
			}
		default:
		}
		batch = q.drain(batch)
		if len(batch) == 0 {
			if !q.arm() {
				continue
			}
			select {
			case <-ctx.Done():
				return
			case <-q.notify:
			case <-sub.ch:
				q.sleeping.Store(false)
				if !step(protocol.TickEvent()) {
					return
				}
			}
			continue
		}
		for _, m := range batch {
			if !step(protocol.RecvEvent(m)) {
				return
			}
		}
	}
}
