package wire

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DefaultTick is the pacing interval used when SessionConfig.Tick is not
// positive: how often each process gets a spontaneous step (the live
// counterpart of the scheduler granting a tick — retransmissions hang off
// these).
const DefaultTick = time.Millisecond

// sessionInboxSize buffers inbound messages per process; a full inbox
// drops frames (counted), which the protocols tolerate as channel loss.
const sessionInboxSize = 1024

// SessionConfig describes one transfer session: a sender/receiver pair
// (typically from registry.Pair), the input tape to transmit, and pacing.
type SessionConfig struct {
	// ID is the session's wire identity; unique per mux.
	ID uint64
	// Sender and Receiver are the protocol processes this session hosts.
	Sender protocol.Sender
	// Receiver is R; its writes build the session's output tape.
	Receiver protocol.Receiver
	// Input is the tape X the sender was built from.
	Input seq.Seq
	// Tick is the spontaneous-step pacing for both processes
	// (DefaultTick when not positive).
	Tick time.Duration
	// Deadline, when positive, bounds the session's wall-clock life; an
	// expired session reports Complete=false (never a safety verdict).
	Deadline time.Duration
	// Seed feeds the session's deterministic jitter streams (retransmit
	// backoff). Zero derives a per-session default from ID.
	Seed int64
	// Stabilize, when non-nil, replaces the strict prefix audit with the
	// supervisor's suffix-alignment audit: transient bad writes after a
	// scrambled crash-restart are measured instead of fatal, and
	// completion means the audit reached aligned end-of-tape. Plain
	// (unsupervised) sessions leave it nil and keep the hard audit.
	Stabilize *StabilizeAudit
}

// Report is one session's outcome.
type Report struct {
	// ID is the session id.
	ID uint64
	// Input is the tape X given to the sender.
	Input seq.Seq
	// Output is the tape Y the receiver wrote.
	Output seq.Seq
	// Complete reports Y = X.
	Complete bool
	// SafetyViolation is the first "Y not a prefix of X" error, if any.
	SafetyViolation error
	// Elapsed is the session's wall-clock life (start to completion,
	// violation, or shutdown).
	Elapsed time.Duration
	// FramesTx counts sender→receiver frames put on the wire.
	FramesTx int
	// AcksTx counts receiver→sender frames put on the wire.
	AcksTx int
	// Retransmits counts consecutive re-sends of the same data message
	// (for stop-and-wait protocols, exactly the paper's retransmissions).
	Retransmits int
	// LearnTimes[i] is the wall-clock time at which Y first had length
	// i+1 — the live counterpart of the paper's t_i.
	LearnTimes []time.Duration
	// GoodputItemsPerSec is len(Output)/Elapsed.
	GoodputItemsPerSec float64
}

// Session is one live transfer: two step-machine loops (sender and
// receiver goroutines) exchanging frames through the mux. Each protocol
// state machine is touched only by its own goroutine; the loops share
// nothing but the inbox queues. Inbound messages arrive through burst
// inboxes (one locked append per message, one wakeup per burst) and
// pacing ticks come from the mux's shared pacer, so a session at rest
// costs no timers and a session under load costs no per-message channel
// operations.
type Session struct {
	cfg SessionConfig
	mux *Mux

	senderAlphabet   msg.Alphabet
	receiverAlphabet msg.Alphabet

	senderInbox   *inbox
	receiverInbox *inbox

	// rxCache is a one-entry decode cache per inbound direction (index 0
	// feeds the receiver inbox, 1 the sender inbox), each owned
	// exclusively by the router goroutine on that end. STP traffic is
	// retransmission-heavy — the same data message or acknowledgement
	// arrives many times in a row — so remembering the last payload's
	// interned Msg turns the common repeat into a byte compare instead of
	// an alphabet-map probe.
	rxCache [2]struct {
		raw []byte
		mg  msg.Msg
	}

	// Written by the loops before their goroutines exit; read by Run
	// after the WaitGroup (the Wait is the happens-before edge).
	framesTx    int
	acksTx      int
	retransmits int
	output      seq.Seq
	learnTimes  []time.Duration
	violation   error
	complete    bool
}

// NewSession registers a session on the mux. The session does not run
// until Run is called.
func (m *Mux) NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Sender == nil || cfg.Receiver == nil {
		return nil, fmt.Errorf("wire: session %d missing processes", cfg.ID)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1 // jitter stream still deterministic per session
	}
	s := &Session{
		cfg:              cfg,
		mux:              m,
		senderAlphabet:   cfg.Sender.Alphabet(),
		receiverAlphabet: cfg.Receiver.Alphabet(),
		senderInbox:      newInbox(sessionInboxSize),
		receiverInbox:    newInbox(sessionInboxSize),
	}
	if err := m.register(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Run drives the session to completion, violation, deadline, or ctx
// cancellation, and returns its report. It must be called at most once.
func (s *Session) Run(ctx context.Context) Report {
	met := s.mux.met
	met.sessionStarted()
	met.reg.Emit("wire.session.start",
		"session", strconv.FormatUint(s.cfg.ID, 10),
		"items", strconv.Itoa(len(s.cfg.Input)))
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.senderLoop(ctx)
	}()
	go func() {
		defer wg.Done()
		s.receiverLoop(ctx, cancel, start)
	}()
	wg.Wait()
	// Closing the inboxes makes the routers count later frames as late.
	s.senderInbox.close()
	s.receiverInbox.close()
	s.mux.unregister(s.cfg.ID)
	elapsed := time.Since(start)

	rep := Report{
		ID:              s.cfg.ID,
		Input:           s.cfg.Input.Clone(),
		Output:          s.output.Clone(),
		Complete:        s.complete,
		SafetyViolation: s.violation,
		Elapsed:         elapsed,
		FramesTx:        s.framesTx,
		AcksTx:          s.acksTx,
		Retransmits:     s.retransmits,
		LearnTimes:      s.learnTimes,
	}
	if elapsed > 0 {
		rep.GoodputItemsPerSec = float64(len(rep.Output)) / elapsed.Seconds()
	}

	met.retransmits.Add(int64(s.retransmits))
	for _, t := range s.learnTimes {
		met.learn.Observe(t.Seconds())
	}
	met.goodput.Observe(rep.GoodputItemsPerSec)
	switch {
	case rep.SafetyViolation != nil:
		// counted when detected, in receiverLoop
	case rep.Complete:
		met.completed.Inc()
	default:
		met.unfinished.Inc()
	}
	met.reg.Emit("wire.session.end",
		"session", strconv.FormatUint(s.cfg.ID, 10),
		"complete", strconv.FormatBool(rep.Complete),
		"frames_tx", strconv.Itoa(rep.FramesTx))
	met.sessionEnded()
	return rep
}

// senderLoop drives S: retransmit ticks plus inbound acknowledgements,
// drained a burst at a time. Spontaneous steps are paced by a capped
// exponential backoff instead of the raw tick: consecutive
// retransmissions double the interval (up to BackoffCapFactor ticks,
// ±25% seeded jitter), and any progress — a fresh send, or an
// acknowledgement the sender does not answer with a retransmission —
// resets it to the base tick. The pacer still fires at the base rate;
// non-due ticks are skipped with one time comparison.
func (s *Session) senderLoop(ctx context.Context) {
	sub := s.mux.pacer.subscribe(s.cfg.Tick)
	defer s.mux.pacer.unsubscribe(sub)
	bo := newBackoff(s.cfg.Tick, s.cfg.Seed, time.Now())
	var lastRetransmitAt time.Time
	var last msg.Msg
	haveLast := false
	step := func(ev protocol.Event) bool {
		retrans, fresh := false, false
		for _, mg := range s.cfg.Sender.Step(ev) {
			if haveLast && mg == last {
				s.retransmits++
				retrans = true
				now := time.Now()
				if !lastRetransmitAt.IsZero() {
					s.mux.met.retransmitIvl.Observe(now.Sub(lastRetransmitAt).Seconds())
				}
				lastRetransmitAt = now
			} else {
				fresh = true
			}
			last, haveLast = mg, true
			s.framesTx++
			if err := s.mux.send(s.cfg.ID, SenderEnd.Dir(), mg); err != nil {
				return false // transport closed under us: shut down
			}
		}
		switch {
		case fresh, ev.Kind == protocol.Recv && !retrans:
			bo.reset()
		case retrans:
			bo.grow()
		}
		return true
	}
	// tick runs one spontaneous step if the backoff says it is due; the
	// step's own grow/reset lands before re-arming, so a retransmission's
	// doubled interval takes effect immediately.
	tick := func() bool {
		now := time.Now()
		if !bo.due(now) {
			return true
		}
		ok := step(protocol.TickEvent())
		bo.arm(now)
		return ok
	}
	batch := make([]msg.Msg, 0, 64)
	q := s.senderInbox
	for {
		// Non-blocking polls keep cancellation and retransmit ticks live
		// even when the inbox never goes empty.
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-sub.ch:
			if !tick() {
				return
			}
		default:
		}
		batch = q.drain(batch)
		if len(batch) == 0 {
			if !q.arm() {
				continue // a message landed between drain and arm
			}
			select {
			case <-ctx.Done():
				return
			case <-q.notify:
			case <-sub.ch:
				q.sleeping.Store(false)
				if !tick() {
					return
				}
			}
			continue
		}
		for _, m := range batch {
			if !step(protocol.RecvEvent(m)) {
				return
			}
		}
	}
}

// receiverLoop drives R: deliveries plus ticks; it audits safety on
// every write and ends the session on completion or violation.
func (s *Session) receiverLoop(ctx context.Context, cancel context.CancelFunc, start time.Time) {
	sub := s.mux.pacer.subscribe(s.cfg.Tick)
	defer s.mux.pacer.unsubscribe(sub)
	// step returns false when the session is over (complete, violated, or
	// the transport closed); the drain loop stops mid-burst so no writes
	// land after the verdict.
	step := func(ev protocol.Event) bool {
		sends, writes := s.cfg.Receiver.Step(ev)
		for _, mg := range sends {
			s.acksTx++
			if err := s.mux.send(s.cfg.ID, ReceiverEnd.Dir(), mg); err != nil {
				return false
			}
		}
		for _, item := range writes {
			s.output = append(s.output, item)
			s.learnTimes = append(s.learnTimes, time.Since(start))
			if a := s.cfg.Stabilize; a != nil {
				// Supervised session: the audit judges suffix alignment
				// across incarnations; done means aligned through the end
				// of the tape with no stabilization window open.
				if a.observe(item) {
					s.complete = true
					cancel()
					return false
				}
				continue
			}
			if !s.output.IsPrefixOf(s.cfg.Input) {
				s.violation = fmt.Errorf(
					"wire: session %d safety violated: Y = %s is not a prefix of X = %s",
					s.cfg.ID, s.output, s.cfg.Input)
				s.mux.met.violations.Inc()
				s.mux.met.reg.Emit("wire.safety.violation",
					"session", strconv.FormatUint(s.cfg.ID, 10),
					"output", s.output.String())
				cancel()
				return false
			}
		}
		if s.cfg.Stabilize == nil && len(s.output) == len(s.cfg.Input) {
			s.complete = true
			cancel()
			return false
		}
		return true
	}
	batch := make([]msg.Msg, 0, 64)
	q := s.receiverInbox
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-sub.ch:
			if !step(protocol.TickEvent()) {
				return
			}
		default:
		}
		batch = q.drain(batch)
		if len(batch) == 0 {
			if !q.arm() {
				continue
			}
			select {
			case <-ctx.Done():
				return
			case <-q.notify:
			case <-sub.ch:
				q.sleeping.Store(false)
				if !step(protocol.TickEvent()) {
					return
				}
			}
			continue
		}
		for _, m := range batch {
			if !step(protocol.RecvEvent(m)) {
				return
			}
		}
	}
}
