package wire

import (
	"context"
	"testing"
	"time"

	"seqtx/internal/obs"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// sessionConfigs builds n alpha-protocol sessions with distinct inputs.
func sessionConfigs(t *testing.T, n, m, items int, tick time.Duration) []SessionConfig {
	t.Helper()
	cfgs := make([]SessionConfig, n)
	for i := range cfgs {
		x := make(seq.Seq, items)
		for j := range x {
			x[j] = seq.Item((i + j) % m)
		}
		s, r, err := registry.Pair("alpha", registry.Params{M: m}, x)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		cfgs[i] = SessionConfig{
			ID:       uint64(i + 1),
			Sender:   s,
			Receiver: r,
			Input:    x,
			Tick:     tick,
			Deadline: 30 * time.Second,
		}
	}
	return cfgs
}

// TestServeManyConcurrentSessions is the subsystem's concurrency
// acceptance test: 32 sessions multiplexed over one in-process transport
// (run it with -race). Every session must finish its tape with the
// output exactly equal to its input and no safety violations.
func TestServeManyConcurrentSessions(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewInproc(0, reg)
	cfgs := sessionConfigs(t, 32, 8, 5, 200*time.Microsecond)
	reports, err := Serve(context.Background(), ServeConfig{Transport: tr, Sessions: cfgs, Obs: reg})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if len(reports) != len(cfgs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(cfgs))
	}
	for i, rep := range reports {
		if rep.SafetyViolation != nil {
			t.Errorf("session %d: safety violation: %v", rep.ID, rep.SafetyViolation)
		}
		if !rep.Complete {
			t.Errorf("session %d: incomplete: %d/%d items", rep.ID, len(rep.Output), len(rep.Input))
		}
		if !rep.Output.Equal(cfgs[i].Input) {
			t.Errorf("session %d: output %s != input %s", rep.ID, rep.Output, cfgs[i].Input)
		}
		if rep.Complete && len(rep.LearnTimes) != len(rep.Input) {
			t.Errorf("session %d: %d learn times for %d items", rep.ID, len(rep.LearnTimes), len(rep.Input))
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wire_safety_violations_total"]; got != 0 {
		t.Errorf("violations counter = %d, want 0", got)
	}
	if got := snap.Counters["wire_sessions_completed_total"]; got != int64(len(cfgs)) {
		t.Errorf("completed counter = %d, want %d", got, len(cfgs))
	}
}

// TestServeUnderImpairment runs concurrent sessions over each link-level
// impairment preset; the protocols must still deliver every tape.
func TestServeUnderImpairment(t *testing.T) {
	for _, name := range []string{"burst-drop", "partition-heal", "corrupt", "dup-replay", "reorder"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts, err := ImpairPreset(name)
			if err != nil {
				t.Fatalf("ImpairPreset: %v", err)
			}
			tr, err := NewImpairment(NewInproc(0, nil), opts, nil)
			if err != nil {
				t.Fatalf("NewImpairment: %v", err)
			}
			cfgs := sessionConfigs(t, 8, 8, 4, 200*time.Microsecond)
			reports, err := Serve(context.Background(), ServeConfig{Transport: tr, Sessions: cfgs})
			if err != nil {
				t.Fatalf("Serve: %v", err)
			}
			for _, rep := range reports {
				if rep.SafetyViolation != nil {
					t.Errorf("session %d: %v", rep.ID, rep.SafetyViolation)
				}
				if !rep.Complete {
					t.Errorf("session %d incomplete under %s", rep.ID, name)
				}
			}
		})
	}
}

// TestServeUDP exercises the datagram transport end to end.
func TestServeUDP(t *testing.T) {
	tr, err := NewUDP(nil)
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	cfgs := sessionConfigs(t, 4, 8, 4, 500*time.Microsecond)
	reports, err := Serve(context.Background(), ServeConfig{Transport: tr, Sessions: cfgs})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for _, rep := range reports {
		if rep.SafetyViolation != nil {
			t.Errorf("session %d: %v", rep.ID, rep.SafetyViolation)
		}
		if !rep.Complete {
			t.Errorf("session %d incomplete over udp", rep.ID)
		}
	}
}

// TestServeContextCancellation: a cancelled context ends every session
// promptly with Complete=false and no safety verdict.
func TestServeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := sessionConfigs(t, 4, 8, 4, time.Millisecond)
	for i := range cfgs {
		cfgs[i].Deadline = 0
	}
	done := make(chan struct{})
	var reports []Report
	var err error
	go func() {
		reports, err = Serve(ctx, ServeConfig{Transport: NewInproc(0, nil), Sessions: cfgs})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for _, rep := range reports {
		if rep.SafetyViolation != nil {
			t.Errorf("session %d: spurious violation %v", rep.ID, rep.SafetyViolation)
		}
	}
}

// TestSessionDeadline: an impossible deadline expires the session
// without declaring a safety violation.
func TestSessionDeadline(t *testing.T) {
	cfgs := sessionConfigs(t, 1, 8, 6, 50*time.Millisecond)
	cfgs[0].Deadline = 10 * time.Millisecond
	reports, err := Serve(context.Background(), ServeConfig{Transport: NewInproc(0, nil), Sessions: cfgs})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if reports[0].Complete {
		t.Error("session completed despite a 10ms deadline and 50ms tick")
	}
	if reports[0].SafetyViolation != nil {
		t.Errorf("deadline expiry reported as safety violation: %v", reports[0].SafetyViolation)
	}
}

// TestMuxRejectsDuplicateSessionID guards the routing table invariant.
func TestMuxRejectsDuplicateSessionID(t *testing.T) {
	mux := NewMux(NewInproc(0, nil), nil)
	defer mux.Close()
	cfgs := sessionConfigs(t, 1, 8, 2, time.Millisecond)
	if _, err := mux.NewSession(cfgs[0]); err != nil {
		t.Fatalf("first NewSession: %v", err)
	}
	if _, err := mux.NewSession(cfgs[0]); err == nil {
		t.Fatal("duplicate session id accepted")
	}
}
