package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seqtx/internal/faults"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// This file is the live-runtime half of the self-stabilization story: a
// session supervisor that crash-restarts real endpoint processes mid-run
// on a seeded schedule, optionally restarting them into scrambled
// (seeded-arbitrary) local state — the wire analogue of the sim's
// scramble restart policy and the model checker's corrupted-root
// frontier. The same faults.CrashPoint schedule and the same
// faults.SubSeed derivation drive all three layers, so one preset name
// plus one seed means the same adversary everywhere.
//
// Because a scrambled restart legitimately produces transient bad
// writes, supervised sessions trade the strict online prefix audit for a
// StabilizeAudit: a suffix-alignment automaton (the same transition
// rules as the checker's quotient alignment) that counts bad writes,
// measures per-crash stabilization times, and flags only
// post-stabilization violations — a bad write landing while no recovery
// window is open — as genuine failures.

// StabilizeAudit judges a supervised session's writes across
// incarnations. It starts aligned at the head of the input; a matching
// write advances, a mismatching or out-of-tape write is a bad write that
// re-aligns to the written item's first occurrence (or drops alignment
// for junk). Crash-restarts open a seeking window: bad writes inside it
// are stabilization debt; the window locks closed — recording the
// stabilization time — after stabilizeLockWrites consecutive good
// writes (or an aligned end of tape), and bad writes OUTSIDE any window
// are post-stabilization violations — the chaos campaign's failure
// signal.
type StabilizeAudit struct {
	mu    sync.Mutex
	input seq.Seq

	pos      int
	aligned  bool
	seeking  bool
	seekGood int
	seekFrom time.Time

	writes         int64
	badWrites      int
	postViolations int
	stabTimes      []time.Duration
	done           bool
}

// stabilizeLockWrites is the hysteresis on closing a recovery window:
// one good write is weak evidence — a scrambled peer's stale in-flight
// frames can still force a bad write right after it — so the window
// locks only after this many consecutive good aligned writes. Three
// mirrors the stab protocol's c+1-copies counting argument at the
// default channel capacity: three consecutive consistent observations
// guarantee at least one is fresh.
const stabilizeLockWrites = 3

// NewStabilizeAudit builds the audit for one session's input tape.
func NewStabilizeAudit(input seq.Seq) *StabilizeAudit {
	return &StabilizeAudit{input: input.Clone(), aligned: true}
}

// observe judges one receiver write and reports whether the tape is
// done: aligned through the end with no recovery window open.
func (a *StabilizeAudit) observe(item seq.Item) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.writes++
	good, bad := false, false
	switch {
	case a.aligned && a.pos < len(a.input) && item == a.input[a.pos]:
		a.pos++
		good = true
	case a.aligned:
		// Mismatch or past-the-end while aligned: a bad write. A tape
		// value restarts a candidate suffix at its first occurrence —
		// the checker's re-alignment rule; junk drops alignment.
		bad = true
		if idx := a.firstIndex(item); idx >= 0 {
			a.pos = idx + 1
		} else {
			a.aligned = false
		}
	default:
		// Unaligned: a tape value starts a candidate suffix (not bad —
		// a cleanly restarted receiver rewriting the head lands here);
		// junk is another bad write.
		if idx := a.firstIndex(item); idx >= 0 {
			a.pos, a.aligned = idx+1, true
		} else {
			bad = true
		}
	}
	if bad {
		a.badWrites++
		a.seekGood = 0
		if !a.seeking {
			a.postViolations++
		}
	}
	if good && a.seeking {
		a.seekGood++
		// Lock the window after stabilizeLockWrites consecutive good
		// writes, or when an aligned suffix reaches the end of the tape
		// (no further writes can strengthen the evidence).
		if a.seekGood >= stabilizeLockWrites || a.pos == len(a.input) {
			a.seeking = false
			a.seekGood = 0
			a.stabTimes = append(a.stabTimes, time.Since(a.seekFrom))
		}
	}
	if a.aligned && !a.seeking && a.pos == len(a.input) {
		a.done = true
	}
	return a.done
}

func (a *StabilizeAudit) firstIndex(item seq.Item) int {
	for i, v := range a.input {
		if v == item {
			return i
		}
	}
	return -1
}

// onCrash opens a recovery window for a crash-restart. A receiver crash
// (amnesia or scramble) invalidates alignment — its write cursor is
// fresh or arbitrary, so its next writes start a new candidate suffix.
// An already-open window keeps its original start time, so overlapping
// crashes measure one combined stabilization episode.
func (a *StabilizeAudit) onCrash(receiver bool, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if receiver {
		a.aligned = false
	}
	a.seekGood = 0
	if !a.seeking {
		a.seeking = true
		a.seekFrom = now
	}
}

// Done reports whether the tape finished: aligned through the end.
func (a *StabilizeAudit) Done() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

// Writes returns the total write count (the watchdog's progress stamp).
func (a *StabilizeAudit) Writes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writes
}

// Seeking reports whether a recovery window is open.
func (a *StabilizeAudit) Seeking() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seeking
}

// snapshot returns the final tallies.
func (a *StabilizeAudit) snapshot() (badWrites, postViolations int, stabTimes []time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.badWrites, a.postViolations, append([]time.Duration(nil), a.stabTimes...)
}

// RestartPolicy selects what state a crashed process restarts into.
type RestartPolicy int

// Restart policies.
const (
	// RestartPreset follows each crash point's own Scramble flag.
	RestartPreset RestartPolicy = iota
	// RestartAmnesia forces every restart into the initial state.
	RestartAmnesia
	// RestartScramble forces every restart into seeded-arbitrary state.
	RestartScramble
)

// String names the policy.
func (p RestartPolicy) String() string {
	switch p {
	case RestartAmnesia:
		return "amnesia"
	case RestartScramble:
		return "scramble"
	default:
		return "preset"
	}
}

// ParseRestartPolicy resolves a -restart-policy flag value.
func ParseRestartPolicy(s string) (RestartPolicy, error) {
	switch s {
	case "preset", "":
		return RestartPreset, nil
	case "amnesia":
		return RestartAmnesia, nil
	case "scramble":
		return RestartScramble, nil
	}
	return 0, fmt.Errorf("wire: unknown restart policy %q (have preset, amnesia, scramble)", s)
}

// ChaosConfig schedules crash-restarts for supervised sessions. The
// schedule is shared with the sim's fault plans: CrashPoint.At indices
// are interpreted as ticks from session start (the live counterpart of
// adversary steps), and scramble seeds derive from Seed via
// faults.SubSeed exactly as the lock-step scheduler derives them, per
// session and per crash.
type ChaosConfig struct {
	// Crashes is the schedule, typically faults.PresetSpec(name).Crashes.
	Crashes []faults.CrashPoint
	// Policy optionally overrides the schedule's per-point Scramble flags.
	Policy RestartPolicy
	// Seed is the chaos master seed; session ID and crash index are mixed
	// in per restart.
	Seed int64
	// Watchdog escalates a stuck recovery: if a session inside a recovery
	// window makes no write progress for this long, the supervisor
	// restarts BOTH processes into clean initial state (0 = 512 ticks).
	Watchdog time.Duration
	// MaxIncarnations caps the restart loop (0 = schedule length + 8).
	MaxIncarnations int
}

// crashEvent is one resolved schedule entry.
type crashEvent struct {
	who      faults.Process
	atTick   int
	scramble bool
}

// schedule expands and sorts the crash points, applying the policy
// override.
func (c ChaosConfig) schedule() []crashEvent {
	var evs []crashEvent
	for _, p := range c.Crashes {
		for _, at := range p.At {
			scramble := p.Scramble
			switch c.Policy {
			case RestartAmnesia:
				scramble = false
			case RestartScramble:
				scramble = true
			}
			evs = append(evs, crashEvent{who: p.Who, atTick: at, scramble: scramble})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].atTick < evs[j].atTick })
	return evs
}

// Incarnation records one supervised session lifetime and why it ended.
type Incarnation struct {
	// Index is the incarnation number, from 0.
	Index int
	// Ended is "crash", "watchdog", "done", "ctx", or "deadline".
	Ended string
	// Victim is the crashed process when Ended is "crash".
	Victim faults.Process
	// AtTick is the scheduled crash tick (-1 for watchdog escalations).
	AtTick int
	// Scrambled reports whether the restart landed in scrambled state.
	Scrambled bool
	// ScrambleSeed is the realized corruption seed (0 when not scrambled).
	ScrambleSeed int64
	// RestartKey is the restarted process state's canonical key — for a
	// watchdog escalation, both keys joined with "|".
	RestartKey string
	// Report is the incarnation's session report.
	Report Report
}

// SupervisedReport aggregates a session's incarnations.
type SupervisedReport struct {
	// ID is the session id.
	ID uint64
	// Input is the tape X.
	Input seq.Seq
	// Output concatenates every incarnation's writes.
	Output seq.Seq
	// Complete reports the audit reached aligned end-of-tape.
	Complete bool
	// Incarnations lists the lifetimes in order.
	Incarnations []Incarnation
	// CrashScheduleDigest hashes the realized crash schedule and restart
	// state keys; equal seeds and configs produce equal digests.
	CrashScheduleDigest uint64
	// BadWrites counts suffix-misaligned writes across the whole run.
	BadWrites int
	// PostStabViolations counts bad writes outside every recovery window
	// — the chaos campaign's genuine safety failures.
	PostStabViolations int
	// StabilizeTimes are the per-recovery-window stabilization times.
	StabilizeTimes []time.Duration
	// WatchdogEscalations counts forced clean restarts.
	WatchdogEscalations int
	// Elapsed is the supervised run's total wall-clock life.
	Elapsed time.Duration
	// FramesTx, AcksTx, Retransmits sum across incarnations.
	FramesTx    int
	AcksTx      int
	Retransmits int
}

// Supervise runs one session under crash-restart supervision: each
// incarnation runs until the next scheduled crash (or completion, the
// watchdog, or ctx), then the victim process is rebuilt — into initial
// state, or scrambled per the schedule — while the surviving process
// carries its live state into the next incarnation. rebuild must return
// a fresh initial-state process pair.
func Supervise(ctx context.Context, mux *Mux, cfg SessionConfig,
	rebuild func() (protocol.Sender, protocol.Receiver, error),
	chaos ChaosConfig) (SupervisedReport, error) {

	if rebuild == nil {
		return SupervisedReport{}, fmt.Errorf("wire: supervise needs a rebuild constructor")
	}
	if cfg.Sender == nil || cfg.Receiver == nil {
		return SupervisedReport{}, fmt.Errorf("wire: session %d missing processes", cfg.ID)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	sessSeed := faults.SubSeed(chaos.Seed, cfg.ID)
	if cfg.Seed == 0 {
		cfg.Seed = sessSeed
	}
	events := chaos.schedule()
	watchdog := chaos.Watchdog
	if watchdog <= 0 {
		watchdog = 512 * cfg.Tick
	}
	maxInc := chaos.MaxIncarnations
	if maxInc <= 0 {
		maxInc = len(events) + 8
	}
	audit := NewStabilizeAudit(cfg.Input)
	cfg.Stabilize = audit
	met := mux.met
	// A sender half (cluster client) hosts no receiver, so the audit
	// never observes writes: its completion verdict is the session
	// report's (the local S transmitted its tape and holds every ack),
	// and crash recovery windows stay closed — the output tape, and
	// with it the stabilization accounting, lives on the peer node.
	senderHalf := cfg.Half == SenderEnd

	srep := SupervisedReport{ID: cfg.ID, Input: cfg.Input.Clone()}
	sender, receiver := cfg.Sender, cfg.Receiver
	start := time.Now()
	next := 0 // next scheduled crash event
	for inc := 0; inc < maxInc; inc++ {
		sc := cfg
		sc.Sender, sc.Receiver = sender, receiver
		s, err := mux.NewSession(sc)
		if err != nil {
			srep.Elapsed = time.Since(start)
			return srep, err
		}
		met.stabIncarnations.Inc()

		ictx := ctx
		var cancelCrash context.CancelFunc
		var ev *crashEvent
		var crashAt time.Time
		if next < len(events) {
			ev = &events[next]
			crashAt = start.Add(time.Duration(ev.atTick) * sc.Tick)
			ictx, cancelCrash = context.WithDeadline(ctx, crashAt)
		}
		wctx, wcancel := context.WithCancel(ictx)
		var escalate atomic.Bool
		stop := make(chan struct{})
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			// Watchdog: escalate when a recovery window stays open with no
			// write progress for a full watchdog interval.
			defer wwg.Done()
			interval := watchdog / 4
			if interval <= 0 {
				interval = watchdog
			}
			t := time.NewTicker(interval)
			defer t.Stop()
			lastWrites := audit.Writes()
			lastChange := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-wctx.Done():
					return
				case <-t.C:
					if cur := audit.Writes(); cur != lastWrites {
						lastWrites, lastChange = cur, time.Now()
						continue
					}
					if audit.Seeking() && time.Since(lastChange) >= watchdog {
						escalate.Store(true)
						wcancel()
						return
					}
				}
			}
		}()

		rep := s.Run(wctx)
		close(stop)
		wcancel()
		if cancelCrash != nil {
			cancelCrash()
		}
		wwg.Wait()

		irec := Incarnation{Index: inc, AtTick: -1, Report: rep}
		srep.Output = append(srep.Output, rep.Output...)
		srep.FramesTx += rep.FramesTx
		srep.AcksTx += rep.AcksTx
		srep.Retransmits += rep.Retransmits
		now := time.Now()

		if audit.Done() || (senderHalf && rep.Complete) {
			irec.Ended = "done"
			srep.Incarnations = append(srep.Incarnations, irec)
			srep.Complete = true
			break
		}
		if ctx.Err() != nil {
			irec.Ended = "ctx"
			srep.Incarnations = append(srep.Incarnations, irec)
			break
		}
		if escalate.Load() {
			// Watchdog escalation: a stuck recovery (a scrambled process
			// wedged past the end of its tape, say) is resolved the way a
			// supervision tree resolves it — restart the whole pair clean.
			ns, nr, rerr := rebuild()
			if rerr != nil {
				srep.Incarnations = append(srep.Incarnations, irec)
				srep.Elapsed = time.Since(start)
				return srep, rerr
			}
			sender, receiver = ns, nr
			audit.onCrash(true, now)
			irec.Ended = "watchdog"
			irec.RestartKey = sender.Key() + "|" + receiver.Key()
			srep.Incarnations = append(srep.Incarnations, irec)
			srep.WatchdogEscalations++
			met.stabEscalations.Inc()
			if mux.sampled(cfg.ID) {
				met.reg.Emit("wire.session.watchdog",
					"session", strconv.FormatUint(cfg.ID, 10),
					"incarnation", strconv.Itoa(inc))
			}
			continue
		}
		if ev != nil && !now.Before(crashAt) {
			// The scheduled crash fired: rebuild the victim; the survivor
			// keeps its live state across the incarnation boundary.
			lane := uint64(next)
			next++
			ns, nr, rerr := rebuild()
			if rerr != nil {
				srep.Incarnations = append(srep.Incarnations, irec)
				srep.Elapsed = time.Since(start)
				return srep, rerr
			}
			var victim interface{ Key() string }
			if ev.who == faults.Sender {
				sender, victim = ns, ns
			} else {
				receiver, victim = nr, nr
			}
			irec.Ended = "crash"
			irec.Victim = ev.who
			irec.AtTick = ev.atTick
			if ev.scramble {
				irec.ScrambleSeed = faults.SubSeed(sessSeed, lane)
				irec.Scrambled = protocol.ScrambleState(victim, irec.ScrambleSeed)
			}
			irec.RestartKey = victim.Key()
			if !senderHalf {
				audit.onCrash(ev.who == faults.Receiver, now)
			}
			srep.Incarnations = append(srep.Incarnations, irec)
			if mux.sampled(cfg.ID) {
				met.reg.Emit("wire.session.crash",
					"session", strconv.FormatUint(cfg.ID, 10),
					"victim", ev.who.String(),
					"scrambled", strconv.FormatBool(irec.Scrambled))
			}
			continue
		}
		// Ended on its own (per-incarnation deadline) with no crash due:
		// the session gave up.
		irec.Ended = "deadline"
		srep.Incarnations = append(srep.Incarnations, irec)
		break
	}

	bad, post, times := audit.snapshot()
	srep.BadWrites = bad
	srep.PostStabViolations = post
	srep.StabilizeTimes = times
	for _, t := range times {
		met.stabTime.Observe(t.Seconds())
	}
	if bad > 0 {
		met.stabBadWrites.Add(int64(bad))
	}
	if post > 0 {
		met.stabPostViol.Add(int64(post))
	}
	srep.Elapsed = time.Since(start)
	srep.CrashScheduleDigest = digestIncarnations(srep.Incarnations)
	return srep, nil
}

// digestIncarnations hashes the realized crash schedule: for each
// incarnation, how it ended, the victim, the scheduled tick, the
// scramble seed, and the exact restart state key. Two runs with the same
// seed and config realize the same schedule, so equal digests certify
// byte-identical crash schedules and restart states.
func digestIncarnations(incs []Incarnation) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	for _, ic := range incs {
		h.Write([]byte(ic.Ended))
		u(uint64(ic.Victim))
		u(uint64(int64(ic.AtTick)))
		u(uint64(ic.ScrambleSeed))
		if ic.Scrambled {
			u(1)
		} else {
			u(0)
		}
		h.Write([]byte(ic.RestartKey))
	}
	return h.Sum64()
}

// ChaosServeConfig describes a supervised fleet: a ServeConfig plus the
// crash schedule and the per-session restart constructors.
type ChaosServeConfig struct {
	ServeConfig
	// Chaos is the shared crash schedule (session seeds derive from
	// Chaos.Seed and each session's ID).
	Chaos ChaosConfig
	// Rebuild returns a fresh initial-state process pair for session
	// index i (index into Sessions).
	Rebuild func(i int) (protocol.Sender, protocol.Receiver, error)
}

// ServeSupervised is Serve with crash-restart supervision: every session
// runs under Supervise with the shared chaos schedule. Reports are
// index-aligned with cfg.Sessions; the error covers setup failures only.
func ServeSupervised(ctx context.Context, cfg ChaosServeConfig) ([]SupervisedReport, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("wire: serve needs a transport")
	}
	if len(cfg.Sessions) == 0 {
		return nil, fmt.Errorf("wire: serve needs at least one session")
	}
	if cfg.Rebuild == nil {
		return nil, fmt.Errorf("wire: supervised serve needs a rebuild constructor")
	}
	mux := NewMuxConfig(cfg.Transport, MuxConfig{
		Obs:              cfg.Obs,
		Engine:           cfg.Engine,
		LoopWorkers:      cfg.LoopWorkers,
		EventSampleEvery: cfg.EventSampleEvery,
	})
	reports := make([]SupervisedReport, len(cfg.Sessions))
	errs := make([]error, len(cfg.Sessions))
	var wg sync.WaitGroup
	wg.Add(len(cfg.Sessions))
	for i, sc := range cfg.Sessions {
		go func(i int, sc SessionConfig) {
			defer wg.Done()
			reports[i], errs[i] = Supervise(ctx, mux, sc,
				func() (protocol.Sender, protocol.Receiver, error) { return cfg.Rebuild(i) },
				cfg.Chaos)
		}(i, sc)
	}
	wg.Wait()
	cerr := mux.Close()
	for _, e := range errs {
		if e != nil {
			return reports, e
		}
	}
	if cerr != nil {
		return reports, fmt.Errorf("wire: closing transport: %w", cerr)
	}
	return reports, nil
}
