package wire

import (
	"context"
	"testing"
	"time"

	"seqtx/internal/faults"
	"seqtx/internal/obs"
	"seqtx/internal/protocol"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// stabConfigs builds n supervised-ready stab sessions plus the restart
// constructor the supervisor rebuilds crashed processes with.
func stabConfigs(t *testing.T, n, m, items int, tick time.Duration) ([]SessionConfig, func(i int) (protocol.Sender, protocol.Receiver, error)) {
	t.Helper()
	params := registry.Params{M: m, Cap: 2}
	cfgs := make([]SessionConfig, n)
	inputs := make([]seq.Seq, n)
	for i := range cfgs {
		x := make(seq.Seq, items)
		for j := range x {
			x[j] = seq.Item((i + j) % m)
		}
		inputs[i] = x
		s, r, err := registry.Pair("stab", params, x)
		if err != nil {
			t.Fatalf("Pair: %v", err)
		}
		cfgs[i] = SessionConfig{
			ID:       uint64(i + 1),
			Sender:   s,
			Receiver: r,
			Input:    x,
			Tick:     tick,
			Deadline: 30 * time.Second,
		}
	}
	return cfgs, func(i int) (protocol.Sender, protocol.Receiver, error) {
		return registry.Pair("stab", params, inputs[i])
	}
}

// TestStabilizeAuditTransitions pins the audit's alignment rules — the
// same transitions the model checker's quotient alignment uses.
func TestStabilizeAuditTransitions(t *testing.T) {
	in := seq.FromInts(4, 1, 3)
	a := NewStabilizeAudit(in)
	if a.observe(4) {
		t.Fatal("done after one of three items")
	}
	// Crash-restart the receiver: alignment drops and a window opens.
	a.onCrash(true, time.Now())
	if !a.Seeking() {
		t.Fatal("no recovery window after a crash")
	}
	a.observe(9) // junk while seeking: bad write, not a post violation
	a.observe(1) // tape value: candidate suffix restart, not bad
	if !a.observe(3) {
		t.Fatal("aligned suffix reached the end; want done")
	}
	bad, post, times := a.snapshot()
	if bad != 1 || post != 0 {
		t.Fatalf("bad=%d post=%d, want 1 and 0", bad, post)
	}
	if len(times) != 1 {
		t.Fatalf("%d stabilization episodes, want 1", len(times))
	}

	// A bad write with no window open is a post-stabilization violation.
	b := NewStabilizeAudit(in)
	b.observe(1)
	bad, post, _ = b.snapshot()
	if bad != 1 || post != 1 {
		t.Fatalf("uncovered bad write: bad=%d post=%d, want 1 and 1", bad, post)
	}
}

// TestSupervisedScrambleRecovers is the wire tentpole's acceptance test:
// a fleet of stab sessions survives the crash-scramble-both preset —
// live endpoint processes crash-restarted into seeded-arbitrary state
// mid-run — with every tape delivered, zero post-stabilization
// violations, and the wire_stabilize_* metrics populated. Run with
// -race.
func TestSupervisedScrambleRecovers(t *testing.T) {
	spec, err := faults.PresetSpec("crash-scramble-both")
	if err != nil {
		t.Fatalf("PresetSpec: %v", err)
	}
	reg := obs.NewRegistry()
	cfgs, rebuild := stabConfigs(t, 8, 8, 6, 500*time.Microsecond)
	reports, err := ServeSupervised(context.Background(), ChaosServeConfig{
		ServeConfig: ServeConfig{Transport: NewInproc(0, reg), Sessions: cfgs, Obs: reg},
		Chaos:       ChaosConfig{Crashes: spec.Crashes, Seed: 7, Watchdog: 400 * time.Millisecond},
		Rebuild:     rebuild,
	})
	if err != nil {
		t.Fatalf("ServeSupervised: %v", err)
	}
	crashed, scrambledRestarts := 0, 0
	for _, rep := range reports {
		if !rep.Complete {
			t.Errorf("session %d incomplete: %d incarnations, output %s",
				rep.ID, len(rep.Incarnations), rep.Output)
		}
		if rep.PostStabViolations != 0 {
			t.Errorf("session %d: %d post-stabilization violations", rep.ID, rep.PostStabViolations)
		}
		if len(rep.Incarnations) < 2 {
			t.Errorf("session %d: %d incarnations; the first scheduled crash never fired",
				rep.ID, len(rep.Incarnations))
		}
		for _, ic := range rep.Incarnations {
			if ic.Ended == "crash" {
				crashed++
				if ic.Scrambled {
					scrambledRestarts++
				}
				if ic.RestartKey == "" {
					t.Errorf("session %d incarnation %d: no restart key", rep.ID, ic.Index)
				}
			}
		}
		if rep.Complete && len(rep.StabilizeTimes) == 0 && len(rep.Incarnations) > 1 {
			t.Errorf("session %d recovered from crashes with no stabilization episode recorded", rep.ID)
		}
	}
	if crashed == 0 || scrambledRestarts == 0 {
		t.Fatalf("chaos did not bite: %d crashes, %d scrambled restarts", crashed, scrambledRestarts)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wire_stabilize_post_violations_total"]; got != 0 {
		t.Errorf("wire_stabilize_post_violations_total = %d, want 0", got)
	}
	if got := snap.Counters["wire_stabilize_incarnations_total"]; got < int64(len(cfgs))+int64(crashed) {
		t.Errorf("wire_stabilize_incarnations_total = %d, want >= %d", got, len(cfgs)+crashed)
	}
	if h, ok := snap.Histograms["wire_stabilize_time_seconds"]; !ok || h.Count == 0 {
		t.Error("wire_stabilize_time_seconds histogram empty")
	}
}

// TestSupervisedChaosDeterminism pins the replay contract: two runs
// with the same seed and config realize byte-identical crash schedules
// and restart states — equal digests, equal per-incarnation victims,
// corruption seeds, and state keys.
func TestSupervisedChaosDeterminism(t *testing.T) {
	run := func() []SupervisedReport {
		t.Helper()
		cfgs, rebuild := stabConfigs(t, 4, 8, 6, time.Millisecond)
		reports, err := ServeSupervised(context.Background(), ChaosServeConfig{
			ServeConfig: ServeConfig{Transport: NewInproc(0, nil), Sessions: cfgs},
			Chaos: ChaosConfig{
				Crashes: []faults.CrashPoint{
					{Who: faults.Sender, At: []int{5}, Scramble: true},
					{Who: faults.Receiver, At: []int{15}, Scramble: true},
				},
				Seed:     42,
				Watchdog: 750 * time.Millisecond,
			},
			Rebuild: rebuild,
		})
		if err != nil {
			t.Fatalf("ServeSupervised: %v", err)
		}
		return reports
	}
	a, b := run(), run()
	for i := range a {
		if a[i].PostStabViolations != 0 || b[i].PostStabViolations != 0 {
			t.Errorf("session %d: post-stabilization violations (%d, %d)",
				a[i].ID, a[i].PostStabViolations, b[i].PostStabViolations)
		}
		if !a[i].Complete || !b[i].Complete {
			t.Errorf("session %d: incomplete (%v, %v)", a[i].ID, a[i].Complete, b[i].Complete)
		}
		if a[i].CrashScheduleDigest != b[i].CrashScheduleDigest {
			t.Errorf("session %d: digests diverged: %x vs %x\nrun A: %+v\nrun B: %+v",
				a[i].ID, a[i].CrashScheduleDigest, b[i].CrashScheduleDigest,
				a[i].Incarnations, b[i].Incarnations)
			continue
		}
		if len(a[i].Incarnations) != len(b[i].Incarnations) {
			t.Errorf("session %d: incarnation counts diverged: %d vs %d",
				a[i].ID, len(a[i].Incarnations), len(b[i].Incarnations))
			continue
		}
		for k := range a[i].Incarnations {
			ia, ib := a[i].Incarnations[k], b[i].Incarnations[k]
			if ia.Ended != ib.Ended || ia.Victim != ib.Victim || ia.AtTick != ib.AtTick ||
				ia.Scrambled != ib.Scrambled || ia.ScrambleSeed != ib.ScrambleSeed ||
				ia.RestartKey != ib.RestartKey {
				t.Errorf("session %d incarnation %d diverged:\nA: %+v\nB: %+v", a[i].ID, k, ia, ib)
			}
		}
	}
}
