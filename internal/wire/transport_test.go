package wire

import (
	"errors"
	"testing"
	"time"

	"seqtx/internal/obs"
)

func TestInprocRoundTrip(t *testing.T) {
	tr := NewInproc(0, nil)
	sendN(t, tr, SenderEnd, []byte{1}, []byte{2})
	sendN(t, tr, ReceiverEnd, []byte{3})
	if got := drain(tr.Recv(ReceiverEnd)); len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Fatalf("S→R frames wrong: %v", got)
	}
	if got := drain(tr.Recv(SenderEnd)); len(got) != 1 || got[0][0] != 3 {
		t.Fatalf("R→S frames wrong: %v", got)
	}
}

func TestInprocSendCopiesFrame(t *testing.T) {
	tr := NewInproc(0, nil)
	buf := []byte{42}
	sendN(t, tr, SenderEnd, buf)
	buf[0] = 99 // caller reuses its buffer; the transport must not care
	got := drain(tr.Recv(ReceiverEnd))
	if len(got) != 1 || got[0][0] != 42 {
		t.Fatalf("transport aliased the caller's buffer: %v", got)
	}
}

func TestInprocBackpressureDropsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewInproc(2, reg)
	for i := 0; i < 5; i++ {
		sendN(t, tr, SenderEnd, []byte{byte(i)})
	}
	if got := drain(tr.Recv(ReceiverEnd)); len(got) != 2 {
		t.Fatalf("buffer of 2 delivered %d frames", len(got))
	}
	if n := reg.Snapshot().Counters[`wire_frames_dropped_total{cause="backpressure"}`]; n != 3 {
		t.Errorf("dropped counter = %d, want 3", n)
	}
}

func TestInprocClose(t *testing.T) {
	tr := NewInproc(0, nil)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := tr.Send(SenderEnd, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if _, ok := <-tr.Recv(ReceiverEnd); ok {
		t.Fatal("Recv channel still open after Close")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	tr, err := NewUDP(nil)
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer tr.Close()
	sendN(t, tr, SenderEnd, []byte{1, 2, 3})
	sendN(t, tr, ReceiverEnd, []byte{4})
	recv := func(ch <-chan []byte) []byte {
		select {
		case f := <-ch:
			return f
		case <-time.After(5 * time.Second):
			t.Fatal("timeout waiting for datagram")
			return nil
		}
	}
	if got := recv(tr.Recv(ReceiverEnd)); len(got) != 3 || got[0] != 1 {
		t.Fatalf("S→R datagram wrong: %v", got)
	}
	if got := recv(tr.Recv(SenderEnd)); len(got) != 1 || got[0] != 4 {
		t.Fatalf("R→S datagram wrong: %v", got)
	}
}

func TestUDPClose(t *testing.T) {
	tr, err := NewUDP(nil)
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := tr.Send(SenderEnd, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	// Reader goroutines must have closed both Recv channels.
	for _, end := range []End{SenderEnd, ReceiverEnd} {
		select {
		case _, ok := <-tr.Recv(end):
			if ok {
				t.Fatalf("%s Recv channel delivered after Close", end)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s Recv channel not closed", end)
		}
	}
}

func TestEndHelpers(t *testing.T) {
	if SenderEnd.Opposite() != ReceiverEnd || ReceiverEnd.Opposite() != SenderEnd {
		t.Error("Opposite wrong")
	}
	if SenderEnd.Dir() == ReceiverEnd.Dir() {
		t.Error("both ends map to the same direction")
	}
}
