package wire

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"seqtx/internal/obs"
)

// UDP is the loopback datagram transport: one socket per end on
// 127.0.0.1. A plain Send puts one frame in one datagram; SendBatch packs
// an ordered burst into batch-framed datagrams, amortizing the syscall
// across every session sharing the link. UDP already provides the
// unreliable channel of the paper — the kernel may drop and reorder
// datagrams — and the impairment layer can make it arbitrarily worse.
type UDP struct {
	senderConn   *net.UDPConn // SenderEnd's socket
	receiverConn *net.UDPConn // ReceiverEnd's socket
	// senderPort / receiverPort are the sockets' cached netip addresses:
	// the AddrPort read/write variants take them by value, so the data
	// path skips the per-call *net.UDPAddr and sockaddr allocations the
	// pointer-based API pays.
	senderPort   netip.AddrPort
	receiverPort netip.AddrPort
	toSender     chan []byte
	toReceiver   chan []byte
	dropped      *obs.Counter

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ Transport = (*UDP)(nil)
var _ BatchSender = (*UDP)(nil)

// udpMaxPayload caps one datagram's payload: comfortably under the
// 65,507-byte UDP limit and under blobCap, so batch scratch buffers stay
// pooled.
const udpMaxPayload = 60 * 1024

// udpRecvBuffer is the per-end inbound frame buffer; frames arriving
// while it is full are dropped (as UDP itself would under load).
const udpRecvBuffer = 4096

// NewUDP returns a UDP loopback transport on two kernel-assigned ports.
// reg (which may be nil) receives the backpressure-drop counter.
func NewUDP(reg *obs.Registry) (*UDP, error) {
	senderConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wire: udp sender socket: %w", err)
	}
	receiverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		senderConn.Close()
		return nil, fmt.Errorf("wire: udp receiver socket: %w", err)
	}
	t := &UDP{
		senderConn:   senderConn,
		receiverConn: receiverConn,
		senderPort:   senderConn.LocalAddr().(*net.UDPAddr).AddrPort(),
		receiverPort: receiverConn.LocalAddr().(*net.UDPAddr).AddrPort(),
		toSender:     make(chan []byte, udpRecvBuffer),
		toReceiver:   make(chan []byte, udpRecvBuffer),
		dropped:      reg.Counter(`wire_frames_dropped_total{cause="backpressure"}`),
		done:         make(chan struct{}),
	}
	t.wg.Add(2)
	go t.read(senderConn, t.toSender)
	go t.read(receiverConn, t.toReceiver)
	return t, nil
}

// Name implements Transport.
func (t *UDP) Name() string { return "udp" }

// Addr returns the local address of the given end's socket.
func (t *UDP) Addr(e End) *net.UDPAddr {
	if e == SenderEnd {
		return t.senderConn.LocalAddr().(*net.UDPAddr)
	}
	return t.receiverConn.LocalAddr().(*net.UDPAddr)
}

// Send implements Transport: one datagram per frame toward the opposite
// end's socket.
func (t *UDP) Send(from End, frame []byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	var err error
	if from == SenderEnd {
		_, err = t.senderConn.WriteToUDPAddrPort(frame, t.receiverPort)
	} else {
		_, err = t.receiverConn.WriteToUDPAddrPort(frame, t.senderPort)
	}
	if err != nil {
		select {
		case <-t.done:
			return ErrClosed // send raced with Close; report the close
		default:
		}
		return fmt.Errorf("wire: udp send: %w", err)
	}
	return nil
}

// SendBatch implements BatchSender: the burst is packed into as few
// batch-framed datagrams as fit, one syscall each.
func (t *UDP) SendBatch(from End, frames [][]byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	conn, to := t.senderConn, t.receiverPort
	if from == ReceiverEnd {
		conn, to = t.receiverConn, t.senderPort
	}
	for start := 0; start < len(frames); {
		n, size := batchFit(frames[start:], udpMaxPayload)
		var err error
		if n == 1 {
			_, err = conn.WriteToUDPAddrPort(frames[start], to)
		} else {
			blob := AppendBatch(getBuf(size), frames[start:start+n])
			_, err = conn.WriteToUDPAddrPort(blob, to)
			putBuf(blob)
		}
		if err != nil {
			select {
			case <-t.done:
				return ErrClosed // send raced with Close; report the close
			default:
			}
			return fmt.Errorf("wire: udp send: %w", err)
		}
		start += n
	}
	return nil
}

// Recv implements Transport.
func (t *UDP) Recv(at End) <-chan []byte {
	if at == SenderEnd {
		return t.toSender
	}
	return t.toReceiver
}

// read pumps datagrams from conn into out until the socket closes, then
// closes out (read is the channel's only writer). The socket is read into
// one reused scratch buffer; only the datagram's actual bytes are copied
// out, into a pooled blob the consumer releases — the loop itself never
// allocates in steady state.
func (t *UDP) read(conn *net.UDPConn, out chan []byte) {
	defer t.wg.Done()
	defer close(out)
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed (or fatally broken): stop pumping
		}
		blob := append(getBuf(n), buf[:n]...)
		select {
		case out <- blob:
		default:
			t.dropped.Inc()
			putBuf(blob)
		}
	}
}

// Close implements Transport: closes both sockets and waits for the
// reader goroutines to close the Recv channels.
func (t *UDP) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		e1 := t.senderConn.Close()
		e2 := t.receiverConn.Close()
		t.wg.Wait()
		if e1 != nil {
			t.closeErr = e1
		} else {
			t.closeErr = e2
		}
	})
	return t.closeErr
}
