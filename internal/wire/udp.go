package wire

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"seqtx/internal/obs"
)

// UDP is the loopback datagram transport: one socket per end on
// 127.0.0.1. A plain Send puts one frame in one datagram; SendBatch packs
// an ordered burst into batch-framed datagrams, amortizing the syscall
// across every session sharing the link. UDP already provides the
// unreliable channel of the paper — the kernel may drop and reorder
// datagrams — and the impairment layer can make it arbitrarily worse.
type UDP struct {
	senderConn   *net.UDPConn // SenderEnd's socket
	receiverConn *net.UDPConn // ReceiverEnd's socket
	// senderPort / receiverPort are the sockets' cached netip addresses:
	// the AddrPort read/write variants take them by value, so the data
	// path skips the per-call *net.UDPAddr and sockaddr allocations the
	// pointer-based API pays.
	senderPort   netip.AddrPort
	receiverPort netip.AddrPort
	toSender     chan []byte
	toReceiver   chan []byte
	dropped      *obs.Counter
	foreign      *obs.Counter
	oversize     *obs.Counter

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ Transport = (*UDP)(nil)
var _ BatchSender = (*UDP)(nil)

// udpMaxPayload caps one datagram's payload: comfortably under the
// 65,507-byte UDP limit and under blobCap, so batch scratch buffers stay
// pooled.
const udpMaxPayload = 60 * 1024

// udpMaxDatagram is the hard UDP payload ceiling (65,535 minus the IP
// and UDP headers): a single frame larger than this cannot go on the
// wire at all, so the send path drops and counts it instead of letting
// the kernel error the whole burst.
const udpMaxDatagram = 65507

// sameSource reports whether a datagram's source address matches the
// expected peer. Ports must match exactly; addresses are compared
// unmapped, so an IPv4 peer seen through an IPv4-in-IPv6 socket still
// matches its configured IPv4 form.
func sameSource(got, want netip.AddrPort) bool {
	return got.Port() == want.Port() && got.Addr().Unmap() == want.Addr().Unmap()
}

// udpRecvBuffer is the per-end inbound frame buffer; frames arriving
// while it is full are dropped (as UDP itself would under load).
const udpRecvBuffer = 4096

// NewUDP returns a UDP loopback transport on two kernel-assigned ports.
// reg (which may be nil) receives the backpressure-drop counter.
func NewUDP(reg *obs.Registry) (*UDP, error) {
	senderConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wire: udp sender socket: %w", err)
	}
	receiverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		senderConn.Close()
		return nil, fmt.Errorf("wire: udp receiver socket: %w", err)
	}
	t := &UDP{
		senderConn:   senderConn,
		receiverConn: receiverConn,
		senderPort:   senderConn.LocalAddr().(*net.UDPAddr).AddrPort(),
		receiverPort: receiverConn.LocalAddr().(*net.UDPAddr).AddrPort(),
		toSender:     make(chan []byte, udpRecvBuffer),
		toReceiver:   make(chan []byte, udpRecvBuffer),
		dropped:      reg.Counter(`wire_frames_dropped_total{cause="backpressure"}`),
		foreign:      reg.Counter(`wire_frames_dropped_total{cause="foreign"}`),
		oversize:     reg.Counter(`wire_frames_dropped_total{cause="oversize"}`),
		done:         make(chan struct{}),
	}
	t.wg.Add(2)
	// Each socket accepts datagrams only from its configured peer — the
	// opposite end's socket. Anything else (another process that guessed
	// the port, a stray datagram) is counted as foreign and never copied
	// toward the mux: the frame checksum proves integrity, the source
	// check proves origin.
	go t.read(senderConn, t.toSender, t.receiverPort)
	go t.read(receiverConn, t.toReceiver, t.senderPort)
	return t, nil
}

// Name implements Transport.
func (t *UDP) Name() string { return "udp" }

// Addr returns the local address of the given end's socket.
func (t *UDP) Addr(e End) *net.UDPAddr {
	if e == SenderEnd {
		return t.senderConn.LocalAddr().(*net.UDPAddr)
	}
	return t.receiverConn.LocalAddr().(*net.UDPAddr)
}

// Send implements Transport: one datagram per frame toward the opposite
// end's socket. A frame past the UDP payload ceiling is dropped and
// counted — the kernel would reject the write, and a link dropping an
// unsendable frame is channel loss, not an error.
func (t *UDP) Send(from End, frame []byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	if len(frame) > udpMaxDatagram {
		t.oversize.Inc()
		return nil
	}
	var err error
	if from == SenderEnd {
		_, err = t.senderConn.WriteToUDPAddrPort(frame, t.receiverPort)
	} else {
		_, err = t.receiverConn.WriteToUDPAddrPort(frame, t.senderPort)
	}
	if err != nil {
		select {
		case <-t.done:
			return ErrClosed // send raced with Close; report the close
		default:
		}
		return fmt.Errorf("wire: udp send: %w", err)
	}
	return nil
}

// SendBatch implements BatchSender: the burst is packed into as few
// batch-framed datagrams as fit, one syscall each.
func (t *UDP) SendBatch(from End, frames [][]byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	conn, to := t.senderConn, t.receiverPort
	if from == ReceiverEnd {
		conn, to = t.receiverConn, t.senderPort
	}
	for start := 0; start < len(frames); {
		n, size := batchFit(frames[start:], udpMaxPayload)
		var err error
		if n == 1 {
			// A lone frame bigger than udpMaxPayload goes out as a raw
			// datagram — but past the hard UDP ceiling the kernel write
			// fails, and that failure used to error out the entire burst.
			// An unsendable frame is channel loss: drop it, count it, and
			// keep the rest of the burst moving.
			if len(frames[start]) > udpMaxDatagram {
				t.oversize.Inc()
				start++
				continue
			}
			_, err = conn.WriteToUDPAddrPort(frames[start], to)
		} else {
			blob := AppendBatch(getBuf(size), frames[start:start+n])
			_, err = conn.WriteToUDPAddrPort(blob, to)
			putBuf(blob)
		}
		if err != nil {
			select {
			case <-t.done:
				return ErrClosed // send raced with Close; report the close
			default:
			}
			return fmt.Errorf("wire: udp send: %w", err)
		}
		start += n
	}
	return nil
}

// Recv implements Transport.
func (t *UDP) Recv(at End) <-chan []byte {
	if at == SenderEnd {
		return t.toSender
	}
	return t.toReceiver
}

// read pumps datagrams from conn into out until the socket closes, then
// closes out (read is the channel's only writer). Datagrams whose source
// is not the configured peer are rejected before any bytes are copied:
// the checksum downstream verifies integrity but never origin, so
// without this check any process that learned the port could inject
// well-formed frames straight into the session mux. The socket is read
// into one reused scratch buffer; only an accepted datagram's bytes are
// copied out, into a pooled blob the consumer releases — the loop itself
// never allocates in steady state. A backpressure drop is charged with
// the blob's frame count (peeked from the batch header), so drop rates
// stay comparable with the inproc transport's per-frame accounting.
func (t *UDP) read(conn *net.UDPConn, out chan []byte, peer netip.AddrPort) {
	defer t.wg.Done()
	defer close(out)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed (or fatally broken): stop pumping
		}
		if !sameSource(from, peer) {
			t.foreign.Add(int64(blobFrames(buf[:n])))
			continue
		}
		blob := append(getBuf(n), buf[:n]...)
		select {
		case out <- blob:
		default:
			t.dropped.Add(int64(blobFrames(blob)))
			putBuf(blob)
		}
	}
}

// Close implements Transport: closes both sockets and waits for the
// reader goroutines to close the Recv channels.
func (t *UDP) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		e1 := t.senderConn.Close()
		e2 := t.receiverConn.Close()
		t.wg.Wait()
		if e1 != nil {
			t.closeErr = e1
		} else {
			t.closeErr = e2
		}
	})
	return t.closeErr
}
