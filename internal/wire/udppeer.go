package wire

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"seqtx/internal/obs"
)

// UDPPeer is the distributed datagram transport: ONE socket, bound to a
// configurable local address, speaking the batch-blob wire format with
// ONE configured remote peer — the other half of the link, running in a
// different process (typically on a different machine). This is what
// replaces the loopback-era UDP transport's two-sockets-one-struct
// assumption: a cluster node no longer owns both ends of the link, it
// owns its end and a peer address.
//
// The process hosting a UDPPeer hosts exactly one End (its sessions run
// as halves, SessionConfig.Half): Send from the hosted end writes
// datagrams to the peer; Recv at the hosted end yields datagrams that
// arrived *from* the peer. Source-address validation is mandatory on
// every datagram — the frame checksum proves integrity but never
// origin, so without it any host that learned the port could inject
// well-formed frames straight into the session mux. Foreign datagrams
// are counted (wire_frames_dropped_total{cause="foreign"}) and never
// copied toward the mux.
//
// The non-hosted end's Recv channel stays empty until Close (the mux
// starts a router per end; the remote end's router simply has nothing
// to do in this process), and Send from the non-hosted end is an error.
type UDPPeer struct {
	host  End
	conn  *net.UDPConn
	local netip.AddrPort
	// remote is the configured peer (atomic: SetRemote may land after
	// the read loop started, in the cluster's bind-then-exchange
	// handshake). nil means "not configured yet": every inbound datagram
	// is foreign and sends fail.
	remote atomic.Pointer[netip.AddrPort]

	inbound chan []byte // datagrams from the peer, toward the hosted end
	ghost   chan []byte // the non-hosted end's Recv: empty, closed on Close

	dropped  *obs.Counter
	foreign  *obs.Counter
	oversize *obs.Counter

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ Transport = (*UDPPeer)(nil)
var _ BatchSender = (*UDPPeer)(nil)

// NewUDPPeer binds one end of a distributed link: host names the End
// this process runs, laddr the local UDP address to bind (port 0 asks
// the kernel), raddr the remote peer ("" defers to SetRemote — the
// cluster runtime binds first, exchanges concrete addresses through the
// coordinator, then points the peers at each other). reg (which may be
// nil) receives the drop counters.
func NewUDPPeer(host End, laddr, raddr string, reg *obs.Registry) (*UDPPeer, error) {
	if host != SenderEnd && host != ReceiverEnd {
		return nil, fmt.Errorf("wire: udp peer: bad host end %d", int(host))
	}
	la, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: udp peer local addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("wire: udp peer socket: %w", err)
	}
	t := &UDPPeer{
		host:     host,
		conn:     conn,
		local:    conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		inbound:  make(chan []byte, udpRecvBuffer),
		ghost:    make(chan []byte),
		dropped:  reg.Counter(`wire_frames_dropped_total{cause="backpressure"}`),
		foreign:  reg.Counter(`wire_frames_dropped_total{cause="foreign"}`),
		oversize: reg.Counter(`wire_frames_dropped_total{cause="oversize"}`),
		done:     make(chan struct{}),
	}
	if raddr != "" {
		if err := t.SetRemote(raddr); err != nil {
			conn.Close()
			return nil, err
		}
	}
	t.wg.Add(1)
	go t.read()
	return t, nil
}

// Name implements Transport.
func (t *UDPPeer) Name() string { return "udp-peer" }

// Host returns the End this process runs.
func (t *UDPPeer) Host() End { return t.host }

// LocalAddr returns the bound local address — the concrete host:port a
// node advertises to the coordinator so its peer can be pointed here.
func (t *UDPPeer) LocalAddr() *net.UDPAddr {
	return t.conn.LocalAddr().(*net.UDPAddr)
}

// SetRemote configures (or re-points) the peer address. Until a remote
// is set, every inbound datagram is foreign and every send fails.
func (t *UDPPeer) SetRemote(raddr string) error {
	ra, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return fmt.Errorf("wire: udp peer remote addr: %w", err)
	}
	// Unmap IPv4-in-IPv6 (ResolveUDPAddr yields ::ffff:a.b.c.d for
	// dotted-quad input, which an IPv4-bound socket cannot write to).
	ap := ra.AddrPort()
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	t.remote.Store(&ap)
	return nil
}

// Send implements Transport: one datagram per frame toward the peer.
// Oversized frames are dropped and counted, not errored — an unsendable
// frame is channel loss.
func (t *UDPPeer) Send(from End, frame []byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	if from != t.host {
		return fmt.Errorf("wire: udp peer hosts the %s end; cannot send from %s", t.host, from)
	}
	remote := t.remote.Load()
	if remote == nil {
		return fmt.Errorf("wire: udp peer: no remote configured")
	}
	if len(frame) > udpMaxDatagram {
		t.oversize.Inc()
		return nil
	}
	if _, err := t.conn.WriteToUDPAddrPort(frame, *remote); err != nil {
		select {
		case <-t.done:
			return ErrClosed // send raced with Close; report the close
		default:
		}
		return fmt.Errorf("wire: udp peer send: %w", err)
	}
	return nil
}

// SendBatch implements BatchSender: the burst is packed into as few
// batch-framed datagrams as fit, one syscall each. A lone frame past
// the UDP payload ceiling is dropped and counted without failing the
// rest of the burst.
func (t *UDPPeer) SendBatch(from End, frames [][]byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	if from != t.host {
		return fmt.Errorf("wire: udp peer hosts the %s end; cannot send from %s", t.host, from)
	}
	remote := t.remote.Load()
	if remote == nil {
		return fmt.Errorf("wire: udp peer: no remote configured")
	}
	for start := 0; start < len(frames); {
		n, size := batchFit(frames[start:], udpMaxPayload)
		var err error
		if n == 1 {
			if len(frames[start]) > udpMaxDatagram {
				t.oversize.Inc()
				start++
				continue
			}
			_, err = t.conn.WriteToUDPAddrPort(frames[start], *remote)
		} else {
			blob := AppendBatch(getBuf(size), frames[start:start+n])
			_, err = t.conn.WriteToUDPAddrPort(blob, *remote)
			putBuf(blob)
		}
		if err != nil {
			select {
			case <-t.done:
				return ErrClosed // send raced with Close; report the close
			default:
			}
			return fmt.Errorf("wire: udp peer send: %w", err)
		}
		start += n
	}
	return nil
}

// Recv implements Transport: the hosted end sees the peer's datagrams;
// the non-hosted end's channel stays empty (its router in this process
// has nothing to route) and closes with the transport.
func (t *UDPPeer) Recv(at End) <-chan []byte {
	if at == t.host {
		return t.inbound
	}
	return t.ghost
}

// read pumps datagrams from the socket toward the hosted end until the
// socket closes. Every datagram's source must match the configured
// peer; mismatches (and anything arriving before a peer is configured)
// are counted as foreign and never reach the mux. Backpressure drops
// are charged with the blob's frame count.
func (t *UDPPeer) read() {
	defer t.wg.Done()
	defer close(t.inbound)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := t.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed (or fatally broken): stop pumping
		}
		remote := t.remote.Load()
		if remote == nil || !sameSource(from, *remote) {
			t.foreign.Add(int64(blobFrames(buf[:n])))
			continue
		}
		blob := append(getBuf(n), buf[:n]...)
		select {
		case t.inbound <- blob:
		default:
			t.dropped.Add(int64(blobFrames(blob)))
			putBuf(blob)
		}
	}
}

// Close implements Transport: closes the socket, waits for the read
// loop to close the hosted Recv channel, and closes the ghost channel.
func (t *UDPPeer) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.closeErr = t.conn.Close()
		t.wg.Wait()
		close(t.ghost)
	})
	return t.closeErr
}
