package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"seqtx/internal/channel"
	"seqtx/internal/obs"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// waitCounter polls a counter until it reaches want or the deadline
// passes (UDP delivery is asynchronous; the read loop needs a moment).
func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) int64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := reg.Snapshot().Counters[name]
		if got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBlobFrames(t *testing.T) {
	frame := EncodeFrame(Frame{Session: 7, Dir: channel.SToR, Msg: "d0"})
	if got := blobFrames(frame); got != 1 {
		t.Errorf("bare frame counts %d, want 1", got)
	}
	frames := make([][]byte, 5)
	for i := range frames {
		frames[i] = EncodeFrame(Frame{Session: uint64(i + 1), Dir: channel.SToR, Msg: "d"})
	}
	blob := AppendBatch(nil, frames)
	if got := blobFrames(blob); got != 5 {
		t.Errorf("batch of 5 counts %d, want 5", got)
	}
	// The incremental (padded-uvarint) encoding the outboxes build must
	// count identically.
	inc := seedBatchBlob(nil)
	for _, f := range frames {
		pfx := len(inc)
		inc = append(inc, 0, 0, 0)
		inc = append(inc, f...)
		putPaddedUvarint(inc[pfx:pfx+batchLenPrefix], uint64(len(f)))
	}
	patchBatchCount(inc, len(frames))
	if got := blobFrames(inc); got != 5 {
		t.Errorf("incremental batch of 5 counts %d, want 5", got)
	}
	// Damaged headers fall back to 1 — never a wild count.
	if got := blobFrames([]byte{batchMagic}); got != 1 {
		t.Errorf("truncated blob counts %d, want 1", got)
	}
	if got := blobFrames([]byte{batchMagic, batchVersion, 0x00}); got != 1 {
		t.Errorf("zero-count blob counts %d, want 1", got)
	}
	huge := append([]byte{batchMagic, batchVersion}, 0xff, 0xff, 0xff, 0x7f)
	if got := blobFrames(huge); got != 1 {
		t.Errorf("absurd-count blob counts %d, want 1", got)
	}
}

// TestUDPBackpressureDropCountsBatchFrames pins the drop-accounting fix:
// a batch blob lost to a full inbound buffer must be charged with its
// frame count (as Inproc.sendBlob does), not as a single unit.
func TestUDPBackpressureDropCountsBatchFrames(t *testing.T) {
	reg := obs.NewRegistry()
	senderConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("sender socket: %v", err)
	}
	receiverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("receiver socket: %v", err)
	}
	// Hand-built transport with a 1-blob inbound buffer so the drop path
	// is deterministic: first blob parks in the channel, the rest drop.
	tr := &UDP{
		senderConn:   senderConn,
		receiverConn: receiverConn,
		senderPort:   senderConn.LocalAddr().(*net.UDPAddr).AddrPort(),
		receiverPort: receiverConn.LocalAddr().(*net.UDPAddr).AddrPort(),
		toSender:     make(chan []byte, 1),
		toReceiver:   make(chan []byte, 1),
		dropped:      reg.Counter(`wire_frames_dropped_total{cause="backpressure"}`),
		foreign:      reg.Counter(`wire_frames_dropped_total{cause="foreign"}`),
		oversize:     reg.Counter(`wire_frames_dropped_total{cause="oversize"}`),
		done:         make(chan struct{}),
	}
	tr.wg.Add(2)
	go tr.read(senderConn, tr.toSender, tr.receiverPort)
	go tr.read(receiverConn, tr.toReceiver, tr.senderPort)
	defer tr.Close()

	frames := make([][]byte, 5)
	for i := range frames {
		frames[i] = EncodeFrame(Frame{Session: uint64(i + 1), Dir: channel.SToR, Msg: "dat"})
	}
	// Three 5-frame batch datagrams, nobody draining Recv: the first
	// fills the buffer, the other two drop — 10 frames, not 2 blobs.
	for i := 0; i < 3; i++ {
		if err := tr.SendBatch(SenderEnd, frames); err != nil {
			t.Fatalf("SendBatch %d: %v", i, err)
		}
	}
	if got := waitCounter(t, reg, `wire_frames_dropped_total{cause="backpressure"}`, 10); got != 10 {
		t.Errorf("backpressure drops = %d frames, want 10 (2 blobs x 5 frames)", got)
	}
}

// TestUDPForeignInjection is the loopback transport's source-validation
// test: a third socket injects well-formed frames at both ends; they
// must be counted as foreign and never surface in the mux — no rx, no
// unknown-session drops, nothing.
func TestUDPForeignInjection(t *testing.T) {
	reg := obs.NewRegistry()
	tr, err := NewUDP(reg)
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	mux := NewMux(tr, reg)
	defer mux.Close()

	attacker, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("attacker socket: %v", err)
	}
	defer attacker.Close()

	// Well-formed frames with plausible session ids and the direction
	// each end expects: the checksum verifies, only the source is wrong.
	const injected = 8
	for i := 0; i < injected; i++ {
		data := EncodeFrame(Frame{Session: uint64(i%4 + 1), Dir: channel.SToR, Msg: "evil"})
		if _, err := attacker.WriteToUDPAddrPort(data, tr.receiverPort); err != nil {
			t.Fatalf("inject S→R: %v", err)
		}
		ack := EncodeFrame(Frame{Session: uint64(i%4 + 1), Dir: channel.RToS, Msg: "ack"})
		if _, err := attacker.WriteToUDPAddrPort(ack, tr.senderPort); err != nil {
			t.Fatalf("inject R→S: %v", err)
		}
	}
	if got := waitCounter(t, reg, `wire_frames_dropped_total{cause="foreign"}`, 2*injected); got != 2*injected {
		t.Fatalf("foreign drops = %d, want %d", got, 2*injected)
	}
	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		switch name {
		case `wire_frames_rx_total{dir="s_to_r"}`, `wire_frames_rx_total{dir="r_to_s"}`,
			`wire_frames_dropped_total{cause="unknown_session"}`,
			`wire_frames_dropped_total{cause="alien"}`,
			"wire_decode_errors_total":
			if v != 0 {
				t.Errorf("injected frames reached the mux: %s = %d", name, v)
			}
		}
	}
}

func TestUDPPeerRoundTrip(t *testing.T) {
	regS, regR := obs.NewRegistry(), obs.NewRegistry()
	sEnd, err := NewUDPPeer(SenderEnd, "127.0.0.1:0", "", regS)
	if err != nil {
		t.Fatalf("sender peer: %v", err)
	}
	defer sEnd.Close()
	rEnd, err := NewUDPPeer(ReceiverEnd, "127.0.0.1:0", sEnd.LocalAddr().String(), regR)
	if err != nil {
		t.Fatalf("receiver peer: %v", err)
	}
	defer rEnd.Close()
	if err := sEnd.SetRemote(rEnd.LocalAddr().String()); err != nil {
		t.Fatalf("SetRemote: %v", err)
	}

	if err := sEnd.Send(SenderEnd, []byte{1, 2, 3}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case got := <-rEnd.Recv(ReceiverEnd):
		if len(got) != 3 || got[0] != 1 {
			t.Fatalf("S→R datagram wrong: %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for S→R datagram")
	}
	if err := rEnd.Send(ReceiverEnd, []byte{9}); err != nil {
		t.Fatalf("reply: %v", err)
	}
	select {
	case got := <-sEnd.Recv(SenderEnd):
		if len(got) != 1 || got[0] != 9 {
			t.Fatalf("R→S datagram wrong: %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for R→S datagram")
	}

	// The non-hosted end cannot send: the opposite process owns it.
	if err := sEnd.Send(ReceiverEnd, []byte{1}); err == nil {
		t.Error("send from non-hosted end succeeded")
	}
}

// TestUDPPeerForeignInjection proves source validation on the
// peer-addressed transport: only the configured peer's datagrams are
// delivered; a third socket's well-formed frames are counted and
// discarded — and before a remote is configured, everything is foreign.
func TestUDPPeerForeignInjection(t *testing.T) {
	reg := obs.NewRegistry()
	victim, err := NewUDPPeer(ReceiverEnd, "127.0.0.1:0", "", reg)
	if err != nil {
		t.Fatalf("victim peer: %v", err)
	}
	defer victim.Close()

	attacker, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("attacker socket: %v", err)
	}
	defer attacker.Close()
	peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("peer socket: %v", err)
	}
	defer peer.Close()

	target := victim.LocalAddr().AddrPort()
	frame := EncodeFrame(Frame{Session: 1, Dir: channel.SToR, Msg: "evil"})

	// Phase 1: no remote configured — even the future peer is foreign.
	if _, err := peer.WriteToUDPAddrPort(frame, target); err != nil {
		t.Fatalf("pre-config send: %v", err)
	}
	if got := waitCounter(t, reg, `wire_frames_dropped_total{cause="foreign"}`, 1); got != 1 {
		t.Fatalf("pre-config foreign drops = %d, want 1", got)
	}

	// Phase 2: remote configured — the peer delivers, the attacker does
	// not, including a batch blob (charged with its frame count).
	if err := victim.SetRemote(peer.LocalAddr().String()); err != nil {
		t.Fatalf("SetRemote: %v", err)
	}
	if _, err := peer.WriteToUDPAddrPort(frame, target); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	select {
	case got := <-victim.Recv(ReceiverEnd):
		if len(got) != len(frame) {
			t.Fatalf("peer datagram mangled: %d bytes", len(got))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for legitimate peer datagram")
	}
	batch := AppendBatch(nil, [][]byte{frame, frame, frame})
	if _, err := attacker.WriteToUDPAddrPort(frame, target); err != nil {
		t.Fatalf("attacker send: %v", err)
	}
	if _, err := attacker.WriteToUDPAddrPort(batch, target); err != nil {
		t.Fatalf("attacker batch send: %v", err)
	}
	if got := waitCounter(t, reg, `wire_frames_dropped_total{cause="foreign"}`, 5); got != 5 {
		t.Fatalf("foreign drops = %d frames, want 5 (1 pre-config + 1 bare + 3-frame batch)", got)
	}
	select {
	case got := <-victim.Recv(ReceiverEnd):
		t.Fatalf("attacker datagram delivered: %v", got)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestUDPOversizedFrameDoesNotFailBurst pins the oversize regression on
// both datagram transports: a single frame past the 65,507-byte UDP
// limit is dropped and counted while the rest of the burst goes out —
// the kernel error no longer aborts the remaining frames.
func TestUDPOversizedFrameDoesNotFailBurst(t *testing.T) {
	big := make([]byte, udpMaxDatagram+1)

	t.Run("loopback", func(t *testing.T) {
		reg := obs.NewRegistry()
		tr, err := NewUDP(reg)
		if err != nil {
			t.Fatalf("NewUDP: %v", err)
		}
		defer tr.Close()
		if err := tr.SendBatch(SenderEnd, [][]byte{{1}, big, {2}}); err != nil {
			t.Fatalf("SendBatch with oversized frame errored: %v", err)
		}
		for want := byte(1); want <= 2; want++ {
			select {
			case got := <-tr.Recv(ReceiverEnd):
				if len(got) != 1 || got[0] != want {
					t.Fatalf("burst survivor wrong: %v (want [%d])", got, want)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("timeout: frame %d lost with the oversized one", want)
			}
		}
		if err := tr.Send(SenderEnd, big); err != nil {
			t.Fatalf("Send oversized frame errored: %v", err)
		}
		if got := reg.Snapshot().Counters[`wire_frames_dropped_total{cause="oversize"}`]; got != 2 {
			t.Errorf("oversize drops = %d, want 2", got)
		}
	})

	t.Run("peer", func(t *testing.T) {
		reg := obs.NewRegistry()
		sEnd, err := NewUDPPeer(SenderEnd, "127.0.0.1:0", "", reg)
		if err != nil {
			t.Fatalf("sender peer: %v", err)
		}
		defer sEnd.Close()
		rEnd, err := NewUDPPeer(ReceiverEnd, "127.0.0.1:0", sEnd.LocalAddr().String(), nil)
		if err != nil {
			t.Fatalf("receiver peer: %v", err)
		}
		defer rEnd.Close()
		if err := sEnd.SetRemote(rEnd.LocalAddr().String()); err != nil {
			t.Fatalf("SetRemote: %v", err)
		}
		if err := sEnd.SendBatch(SenderEnd, [][]byte{{1}, big, {2}}); err != nil {
			t.Fatalf("SendBatch with oversized frame errored: %v", err)
		}
		for want := byte(1); want <= 2; want++ {
			select {
			case got := <-rEnd.Recv(ReceiverEnd):
				if len(got) != 1 || got[0] != want {
					t.Fatalf("burst survivor wrong: %v (want [%d])", got, want)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("timeout: frame %d lost with the oversized one", want)
			}
		}
		if err := sEnd.Send(SenderEnd, big); err != nil {
			t.Fatalf("Send oversized frame errored: %v", err)
		}
		if got := reg.Snapshot().Counters[`wire_frames_dropped_total{cause="oversize"}`]; got != 2 {
			t.Errorf("oversize drops = %d, want 2", got)
		}
	})
}

// TestUDPPeerSendCloseRace hammers Send/SendBatch from several
// goroutines while Close runs (run with -race): sends may fail with
// ErrClosed but must never panic or return a non-close error.
func TestUDPPeerSendCloseRace(t *testing.T) {
	sEnd, err := NewUDPPeer(SenderEnd, "127.0.0.1:0", "", nil)
	if err != nil {
		t.Fatalf("sender peer: %v", err)
	}
	rEnd, err := NewUDPPeer(ReceiverEnd, "127.0.0.1:0", sEnd.LocalAddr().String(), nil)
	if err != nil {
		t.Fatalf("receiver peer: %v", err)
	}
	defer rEnd.Close()
	if err := sEnd.SetRemote(rEnd.LocalAddr().String()); err != nil {
		t.Fatalf("SetRemote: %v", err)
	}

	frame := EncodeFrame(Frame{Session: 1, Dir: channel.SToR, Msg: "d"})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				var err error
				if g%2 == 0 {
					err = sEnd.Send(SenderEnd, frame)
				} else {
					err = sEnd.SendBatch(SenderEnd, [][]byte{frame, frame})
				}
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("send during close: %v", err)
					return
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(time.Millisecond)
	if err := sEnd.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()
	if err := sEnd.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := sEnd.Send(SenderEnd, frame); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

// TestUDPPeerHalfSessions is the distributed data path end-to-end in
// one process: two muxes, each over its own peer-addressed socket, run
// the sender and receiver halves of the same session fleet — exactly
// what a client node and a server node do across machines. Every tape
// must arrive intact with zero safety violations, and a third socket
// injecting mid-run must never surface in either mux.
func TestUDPPeerHalfSessions(t *testing.T) {
	const n, m, items = 4, 8, 5
	regS, regR := obs.NewRegistry(), obs.NewRegistry()
	sEnd, err := NewUDPPeer(SenderEnd, "127.0.0.1:0", "", regS)
	if err != nil {
		t.Fatalf("sender peer: %v", err)
	}
	rEnd, err := NewUDPPeer(ReceiverEnd, "127.0.0.1:0", sEnd.LocalAddr().String(), regR)
	if err != nil {
		t.Fatalf("receiver peer: %v", err)
	}
	if err := sEnd.SetRemote(rEnd.LocalAddr().String()); err != nil {
		t.Fatalf("SetRemote: %v", err)
	}

	half := func(h End) []SessionConfig {
		cfgs := make([]SessionConfig, n)
		for i := range cfgs {
			x := make(seq.Seq, items)
			for j := range x {
				x[j] = seq.Item((i + j) % m)
			}
			s, r, err := registry.Pair("alpha", registry.Params{M: m}, x)
			if err != nil {
				t.Fatalf("Pair: %v", err)
			}
			cfgs[i] = SessionConfig{
				ID: uint64(i + 1), Sender: s, Receiver: r, Input: x,
				Tick: 500 * time.Microsecond, Deadline: 30 * time.Second,
				Half: h,
			}
		}
		return cfgs
	}

	attacker, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("attacker socket: %v", err)
	}
	defer attacker.Close()
	stop := make(chan struct{})
	var injectWG sync.WaitGroup
	injectWG.Add(1)
	go func() {
		defer injectWG.Done()
		// Inject plausible frames at both nodes for the whole run: valid
		// session ids, valid direction, in-alphabet-shaped payloads.
		target := rEnd.LocalAddr().AddrPort()
		back := sEnd.LocalAddr().AddrPort()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f := EncodeFrame(Frame{Session: uint64(i%n + 1), Dir: channel.SToR, Msg: "x9"})
			attacker.WriteToUDPAddrPort(f, target)
			a := EncodeFrame(Frame{Session: uint64(i%n + 1), Dir: channel.RToS, Msg: "a0"})
			attacker.WriteToUDPAddrPort(a, back)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sReports, rReports []Report
	var sErr, rErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rReports, rErr = Serve(ctx, ServeConfig{Transport: rEnd, Sessions: half(ReceiverEnd), Obs: regR})
	}()
	go func() {
		defer wg.Done()
		sReports, sErr = Serve(ctx, ServeConfig{Transport: sEnd, Sessions: half(SenderEnd), Obs: regS})
	}()
	wg.Wait()
	close(stop)
	injectWG.Wait()
	if sErr != nil || rErr != nil {
		t.Fatalf("Serve: sender %v, receiver %v", sErr, rErr)
	}

	for i, rep := range rReports {
		if rep.SafetyViolation != nil {
			t.Errorf("receiver half %d: safety violation: %v", rep.ID, rep.SafetyViolation)
		}
		if !rep.Complete {
			t.Errorf("receiver half %d: incomplete: %d/%d items", rep.ID, len(rep.Output), len(rep.Input))
		}
		if !rep.Output.Equal(rReports[i].Input) {
			t.Errorf("receiver half %d: output %s != input %s", rep.ID, rep.Output, rep.Input)
		}
	}
	for _, rep := range sReports {
		if !rep.Complete {
			t.Errorf("sender half %d: not quiescent at shutdown", rep.ID)
		}
	}
	// The attacker was live the whole run: both nodes must have counted
	// foreign datagrams, and none may have surfaced as decoded traffic
	// (every decode error or alien frame would be an injection leak —
	// the legitimate peer's traffic is checksummed and same-alphabet).
	for name, reg := range map[string]*obs.Registry{"sender": regS, "receiver": regR} {
		snap := reg.Snapshot()
		if snap.Counters[`wire_frames_dropped_total{cause="foreign"}`] == 0 {
			t.Errorf("%s node: injection ran but foreign counter is 0", name)
		}
		for _, c := range []string{
			"wire_decode_errors_total",
			`wire_frames_dropped_total{cause="alien"}`,
		} {
			if v := snap.Counters[c]; v != 0 {
				t.Errorf("%s node: %s = %d, want 0 (injected frames leaked past source validation)", name, c, v)
			}
		}
	}
	fmt.Println("half-session fleet complete over peer-addressed UDP with live injection")
}
