// Package wire lifts the repository's STP protocols off the lock-step
// scheduler and onto real asynchronous transports: the same deterministic
// protocol.Sender/protocol.Receiver step machines, driven by live
// concurrent links instead of a synchronous world-step.
//
// The stack, bottom to top:
//
//   - Transport: a bidirectional frame pipe between two ends (SenderEnd
//     hosts every session's S, ReceiverEnd every R). Two implementations:
//     an in-process goroutine/channel transport and a UDP loopback
//     transport. Both are allowed to drop, reorder, and (after the
//     impairment layer) duplicate frames — i.e. a live link is a
//     dup+del channel in the paper's sense, which is exactly the setting
//     the protocols were verified for.
//   - The frame codec (codec.go): frames msg.Msg values from the
//     protocol's finite alphabet onto the wire with a session id, a
//     direction, and a checksum, so byte corruption is rejected rather
//     than mis-decoded.
//   - Impairment (impair.go): replays internal/faults plans — burst-drop,
//     partition-heal, corruption, plus wire-native duplication and
//     reordering — against live links, with fault windows counted in
//     frames handled instead of adversary steps.
//   - Session/Mux (session.go, mux.go): multiplexes N concurrent
//     sender/receiver pairs over one transport, paces each protocol with
//     retransmit ticks, audits the safety invariant (Y is a prefix of X)
//     online on every write, and reports per-session goodput and
//     learning times.
//   - DetRun (det.go): the deterministic option — a seeded single-thread
//     scheduler that drives one session through the same codec path and
//     records its schedule as a trace, so the run can be replayed inside
//     internal/sim and the two worlds compared output-tape for
//     output-tape (the fidelity argument in DESIGN.md §8).
//
// Everything is instrumented through internal/obs (frames tx/rx, drops
// by cause, dup deliveries, retransmits, an active-session gauge, goodput
// and learning-time histograms) and shuts down gracefully via context
// cancellation and per-session deadlines.
package wire

import (
	"errors"
	"fmt"

	"seqtx/internal/channel"
)

// End identifies one side of a bidirectional transport. All session
// senders live on SenderEnd, all receivers on ReceiverEnd; a frame sent
// from an end is delivered to the opposite end.
type End int

// Transport ends.
const (
	// SenderEnd hosts every session's sender process.
	SenderEnd End = iota + 1
	// ReceiverEnd hosts every session's receiver process.
	ReceiverEnd
)

// String names the end.
func (e End) String() string {
	switch e {
	case SenderEnd:
		return "sender"
	case ReceiverEnd:
		return "receiver"
	default:
		return fmt.Sprintf("End(%d)", int(e))
	}
}

// Dir returns the direction frames travel when sent from this end.
func (e End) Dir() channel.Dir {
	if e == SenderEnd {
		return channel.SToR
	}
	return channel.RToS
}

// Opposite returns the other end.
func (e End) Opposite() End {
	if e == SenderEnd {
		return ReceiverEnd
	}
	return SenderEnd
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("wire: transport closed")

// Transport is a bidirectional, unreliable frame pipe between the two
// ends. Implementations may drop frames (backpressure, UDP loss) and are
// not required to preserve order — a live link behaves like the paper's
// dup+del channel, and the protocols running over it must already
// tolerate that.
//
// Send must not block indefinitely (drop instead) and must be safe for
// concurrent use; after Close it returns ErrClosed. Recv returns the
// stream of raw wire blobs arriving at an end: each blob is either one
// encoded frame or, when the sender batched, a batch blob (IsBatch
// distinguishes them; SplitBatch iterates the frames). Blobs may come
// from the shared buffer pool — a consumer that finishes with one should
// hand it back with ReleaseBuf (optional: unreturned buffers are simply
// collected by the GC). The channel is closed when the transport closes.
type Transport interface {
	// Name identifies the transport for reports.
	Name() string
	// Send queues one encoded frame from the given end toward the
	// opposite end. The frame bytes are owned by the caller; transports
	// copy what they keep.
	Send(from End, frame []byte) error
	// Recv returns the channel of blobs arriving at the given end.
	Recv(at End) <-chan []byte
	// Close tears the transport down and closes both Recv channels.
	// Close is idempotent.
	Close() error
}

// BatchSender is the optional fast path a Transport may implement: it
// queues an ordered burst of encoded frames in one operation, letting the
// transport coalesce them into a single datagram or channel handoff
// (writev-style). Semantically SendBatch is exactly Send called once per
// frame in order — batching is an amortization, never a new behavior.
// Like Send, the frame bytes are owned by the caller.
type BatchSender interface {
	// SendBatch queues the frames from the given end in order.
	SendBatch(from End, frames [][]byte) error
}

// blobSender is the zero-copy fast path an in-process transport may
// implement: the caller hands over an already-encoded batch blob in a
// pooled buffer and OWNERSHIP TRANSFERS with the call — the transport
// either delivers the blob to its Recv consumer (who releases it) or
// releases it itself on drop/close. nFrames is the blob's frame count,
// for drop accounting.
type blobSender interface {
	sendBlob(from End, blob []byte, nFrames int) error
}

// sendFrames hands frames to tr's batch path when it has one (and the
// burst is genuinely plural), falling back to per-frame Send.
func sendFrames(tr Transport, from End, frames [][]byte) error {
	if len(frames) > 1 {
		if bs, ok := tr.(BatchSender); ok {
			return bs.SendBatch(from, frames)
		}
	}
	for _, f := range frames {
		if err := tr.Send(from, f); err != nil {
			return err
		}
	}
	return nil
}

// ReleaseBuf returns a blob received from a Transport's Recv channel to
// the shared buffer pool. Calling it is optional; passing a buffer that
// did not come from the pool is harmless.
func ReleaseBuf(b []byte) { putBuf(b) }
