#!/usr/bin/env bash
# run-cluster.sh — build the cluster binaries and run a real multi-process
# sweep: one stpmaster coordinator, N stpserve server nodes, and N stpload
# client nodes, all separate OS processes wired together over the
# line-JSON control plane and peer-addressed UDP data plane.
#
# Usage:
#   scripts/run-cluster.sh [nodes-per-role] [report-path]
#
# Defaults: 2 nodes per role, report to BENCH_cluster.json. Extra sweep
# axes come from the environment:
#   SESSIONS=4,16  RATES=0,100  IMPAIRS=none,burst-drop  PROTO=alpha
#   DEADLINE=30s   TICK=1ms     SEED=1
#
# Exits non-zero if the sweep reports any prefix-safety violation, any
# process fails, or the report is not valid JSON.
set -euo pipefail

NODES="${1:-2}"
REPORT="${2:-BENCH_cluster.json}"
SESSIONS="${SESSIONS:-4,16}"
RATES="${RATES:-0,100}"
IMPAIRS="${IMPAIRS:-none,burst-drop}"
PROTO="${PROTO:-alpha}"
DEADLINE="${DEADLINE:-30s}"
TICK="${TICK:-1ms}"
SEED="${SEED:-1}"

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$BIN"
}
trap cleanup EXIT

echo "run-cluster: building binaries"
go build -o "$BIN/stpmaster" ./cmd/stpmaster
go build -o "$BIN/stpserve" ./cmd/stpserve
go build -o "$BIN/stpload" ./cmd/stpload

# The master binds :0 and prints the concrete control address; parse it
# so parallel runs never fight over a fixed port.
"$BIN/stpmaster" sweep -listen 127.0.0.1:0 \
    -servers "$NODES" -clients "$NODES" \
    -proto "$PROTO" -sessions "$SESSIONS" -rates "$RATES" -impairs "$IMPAIRS" \
    -tick "$TICK" -deadline "$DEADLINE" -seed "$SEED" \
    -report "$REPORT" -v >"$LOGS/master.log" 2>&1 &
MASTER_PID=$!
pids+=("$MASTER_PID")

MASTER_ADDR=""
for _ in $(seq 1 100); do
    MASTER_ADDR="$(sed -n 's/^stpmaster: control plane on \([^ ,]*\).*/\1/p' "$LOGS/master.log" | head -1)"
    [ -n "$MASTER_ADDR" ] && break
    kill -0 "$MASTER_PID" 2>/dev/null || { cat "$LOGS/master.log"; echo "run-cluster: master died before binding"; exit 1; }
    sleep 0.1
done
[ -n "$MASTER_ADDR" ] || { cat "$LOGS/master.log"; echo "run-cluster: master never announced its address"; exit 1; }
echo "run-cluster: master on $MASTER_ADDR, starting $NODES server + $NODES client nodes"

for i in $(seq 1 "$NODES"); do
    "$BIN/stpserve" -master "$MASTER_ADDR" -node-name "srv-$i" -v >"$LOGS/srv-$i.log" 2>&1 &
    pids+=("$!")
    "$BIN/stpload" -master "$MASTER_ADDR" -node-name "cli-$i" -v >"$LOGS/cli-$i.log" 2>&1 &
    pids+=("$!")
done

code=0
wait "$MASTER_PID" || code=$?
for pid in "${pids[@]}"; do
    [ "$pid" = "$MASTER_PID" ] && continue
    wait "$pid" || { echo "run-cluster: node pid $pid failed"; code=1; }
done
pids=()
cat "$LOGS/master.log"
if [ "$code" -ne 0 ]; then
    echo "run-cluster: FAILED (exit $code); node logs in $LOGS"
    exit "$code"
fi

python3 - "$REPORT" "$NODES" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
nodes = int(sys.argv[2])
assert doc["servers"] == nodes and doc["clients"] == nodes, (doc["servers"], doc["clients"])
assert doc["cells"], "sweep produced no cells"
assert doc["total_violations"] == 0, f'{doc["total_violations"]} prefix-safety violations'
for cell in doc["cells"]:
    assert cell["frames_tx"] > 0 and cell["frames_rx"] > 0, cell["cell"]
    assert len(cell["nodes"]) == 2 * nodes, cell["cell"]
print(f'run-cluster: OK — {len(doc["cells"])} cells, '
      f'{doc["total_completed"]}/{doc["total_sessions"]} sessions complete, 0 violations')
EOF
rm -rf "$LOGS"
