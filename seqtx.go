// Package seqtx reproduces Wang & Zuck, "Tight Bounds for the Sequence
// Transmission Problem" (PODC 1989 / YALEU-DCS-TR-705) as a runnable Go
// library: the runs model, the unreliable channels, the tight alpha(m)
// protocols, the §5 boundedness menagerie, knowledge analysis, and the
// model checking that makes the impossibility proofs executable.
//
// The sequence transmission problem (STP): a sender S must communicate a
// data sequence X to a receiver R over an unreliable bidirectional
// channel so that R's output tape Y is always a prefix of X (safety) and
// eventually all of X on fair runs (liveness). With a finite sender
// alphabet of size m, the paper's tight bound is
//
//	alpha(m) = m! * sum_{k=0..m} 1/k!  =  floor(e·m!)  (m >= 1),
//
// the number of repetition-free sequences over m letters: no more than
// alpha(m) distinct input sequences can be handled when the channel can
// reorder and duplicate (Theorem 1), or — for protocols with bounded
// fault recovery — reorder and delete (Theorem 2).
//
// # Quick start
//
//	spec := seqtx.TightProtocol(4)              // the paper's protocol, m = 4
//	res, err := seqtx.Transmit(spec, seqtx.Sequence(2, 0, 3, 1),
//	    seqtx.ChannelDup, seqtx.FairRandom(42))
//	// res.Output == 2.0.3.1, res.SafetyViolation == nil
//
// The facade re-exports the stable surface of the internal packages; see
// the example programs under examples/ and the experiment harness
// cmd/stpexp for larger tours.
package seqtx

import (
	"seqtx/internal/alpha"
	"seqtx/internal/channel"
	"seqtx/internal/epistemic"
	"seqtx/internal/faults"
	"seqtx/internal/mc"
	"seqtx/internal/msg"
	"seqtx/internal/prob"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/gobackn"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/protocol/selrepeat"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/soak"
)

// Core data types.
type (
	// Item is a single data element of the finite domain D.
	Item = seq.Item
	// Seq is a data sequence (an input tape X or output tape Y).
	Seq = seq.Seq
	// SeqSet is a finite set X of allowable input sequences.
	SeqSet = seq.Set
	// Msg is a channel message.
	Msg = msg.Msg
	// Alphabet is a finite message alphabet (M^S or M^R).
	Alphabet = msg.Alphabet
	// Spec bundles a protocol's sender/receiver constructors.
	Spec = protocol.Spec
	// Sender is the sender process state machine.
	Sender = protocol.Sender
	// Receiver is the receiver process state machine.
	Receiver = protocol.Receiver
	// ChannelKind selects the unreliable channel model.
	ChannelKind = channel.Kind
	// Adversary resolves the environment's nondeterminism.
	Adversary = sim.Adversary
	// RunResult summarizes a simulated run.
	RunResult = sim.Result
	// RunConfig bounds a simulated run.
	RunConfig = sim.Config
	// World is a global state of the runs model.
	World = sim.World
)

// Channel models (§2.2 of the paper).
const (
	// ChannelDup reorders and duplicates (Theorem 1's channel).
	ChannelDup = channel.KindDup
	// ChannelDel reorders and deletes (Theorem 2's channel).
	ChannelDel = channel.KindDel
	// ChannelReorder only reorders: every copy is delivered exactly once.
	ChannelReorder = channel.KindReorder
	// ChannelFIFO preserves order but may lose and duplicate (the classic
	// alternating-bit substrate).
	ChannelFIFO = channel.KindFIFO
	// ChannelDupDel reorders, duplicates, AND deletes — the full fault
	// menu of the paper's introduction.
	ChannelDupDel = channel.KindDupDel
)

// Dir selects one direction of the bidirectional link.
type Dir = channel.Dir

// Link directions (for fault plans and the eclipse adversary).
const (
	// DirSToR is the data direction, sender to receiver.
	DirSToR = channel.SToR
	// DirRToS is the acknowledgement direction, receiver to sender.
	DirRToS = channel.RToS
)

// Sequence builds a Seq from items.
func Sequence(items ...int) Seq { return seq.FromInts(items...) }

// Alpha returns alpha(m) = m!·sum 1/k!, the paper's tight bound, exact up
// to m = 20.
func Alpha(m int) (uint64, error) { return alpha.Alpha(m) }

// RepetitionFreeSequences enumerates the alpha(m) repetition-free
// sequences over a domain of size m — the tight protocol's X.
func RepetitionFreeSequences(m int) []Seq { return seq.RepetitionFree(m) }

// TightProtocol returns the paper's protocol (§3/§4): it solves X-STP on
// both dup and del channels for the repetition-free X with |X| = alpha(m).
// It panics on negative m; use alphaproto.New via the internal package
// for error returns.
func TightProtocol(m int) Spec { return alphaproto.MustNew(m) }

// EncodedProtocol generalizes the tight protocol to an arbitrary finite
// set X of sequences, provided X admits the paper's prefix-monotone
// encoding over m messages (§3, end). It errors when |X| > alpha(m) or
// the prefix structure does not embed.
func EncodedProtocol(x *SeqSet, m int) (Spec, error) { return alphaproto.NewEncoded(x, m) }

// NewSeqSet builds a duplicate-free set of sequences.
func NewSeqSet(seqs ...Seq) (*SeqSet, error) { return seq.NewSet(seqs...) }

// AFWZProtocol returns the reverse-order protocol standing in for
// [AFWZ89] (§5): all finite sequences over m items on del/reorder
// channels, safe everywhere, live under finite-delay fairness, unbounded.
func AFWZProtocol(m int) Spec { return afwz.MustNew(m) }

// HybridProtocol returns the §5 ABP/AFWZ alternation: weakly bounded but
// not bounded, on reordering channels, with the given timeout.
func HybridProtocol(m, timeout int) Spec { return hybrid.MustNew(m, timeout) }

// ABProtocol returns the alternating-bit protocol (safe on ChannelFIFO,
// broken under reordering).
func ABProtocol(m int) Spec { return abp.MustNew(m) }

// StenningProtocol returns the unbounded-sequence-number baseline
// [Ste76]: correct on every channel, infinite alphabet.
func StenningProtocol() Spec { return stenning.New() }

// NaiveProtocol returns the over-claiming protocol (the tight protocol
// minus duplicate suppression, accepting every sequence): the natural but
// doomed attempt to exceed alpha(m), used as the victim in the
// impossibility demonstrations.
func NaiveProtocol(m int) (Spec, error) { return naive.NewWriteEveryData(m) }

// ModseqProtocol returns the §6-outlook protocol: Stenning with sequence
// numbers modulo window. Finite alphabet (window·m data messages), every
// sequence allowed; failure is possible in adversarial runs (Theorems 1/2
// demand it) but improbable in random ones for wide windows.
func ModseqProtocol(m, window int) (Spec, error) { return modseq.New(m, window) }

// GoBackNProtocol returns the Go-Back-N sliding window over ChannelFIFO
// (window+1 frame numbers; whole-window retransmission on timeout).
func GoBackNProtocol(m, window int) (Spec, error) { return gobackn.New(m, window) }

// SelRepeatProtocol returns Selective Repeat over ChannelFIFO (2·window
// frame numbers; per-frame acknowledgement and retransmission).
func SelRepeatProtocol(m, window int) (Spec, error) { return selrepeat.New(m, window) }

// Adversaries.

// FairRoundRobin returns the canonical deterministic fair schedule.
func FairRoundRobin() Adversary { return sim.NewRoundRobin() }

// FairRandom returns a seeded random schedule wrapped in finite-delay
// fairness (every message delivered within a small budget).
func FairRandom(seed int64) Adversary {
	return sim.NewFinDelay(sim.NewRandom(seed), 10)
}

// Replayer returns a dup-channel adversary that keeps re-delivering old
// messages.
func Replayer(seed int64, period int) Adversary { return sim.NewReplayer(seed, period) }

// Dropper returns a del-channel adversary that deletes up to budget
// copies, then schedules fairly.
func Dropper(seed int64, budget int) Adversary { return sim.NewBudgetDropper(seed, budget) }

// Withholder returns an adversary that delays all deliveries for
// holdSteps steps, then schedules fairly.
func Withholder(holdSteps int) Adversary { return sim.NewWithholder(holdSteps) }

// Starver returns the adaptive starvation adversary under finite-delay
// fairness: it maximally delays the oldest undelivered message while
// staying fair, realizing the worst legal delay on every message.
func Starver() Adversary { return sim.NewFinDelay(sim.NewStarver(), 12) }

// Eclipse returns an adversary that isolates one link direction for
// holdSteps steps (a one-way partition), then schedules fairly.
func Eclipse(dir Dir, holdSteps int) Adversary { return sim.NewEclipse(dir, holdSteps) }

// PhasedPartition returns an adversary alternating healthy and fully
// partitioned phases forever — fair in the limit, maximally bursty.
func PhasedPartition(healthy, partitioned int) Adversary {
	return sim.NewPhasedPartition(healthy, partitioned)
}

// Transmit runs spec on input over a fresh channel of the given kind,
// driven by adv, stopping at completion, a safety violation, or a
// generous step bound.
func Transmit(spec Spec, input Seq, kind ChannelKind, adv Adversary) (RunResult, error) {
	return sim.RunProtocol(spec, input, kind, adv, RunConfig{
		MaxSteps:         1000*len(input) + 1000,
		StopWhenComplete: true,
	})
}

// Model checking (the executable impossibility proofs).
type (
	// EngineConfig selects the exploration worker count (0 = GOMAXPROCS,
	// 1 = sequential; results are identical for every setting).
	EngineConfig = mc.EngineConfig
	// ExploreConfig bounds an exhaustive exploration.
	ExploreConfig = mc.ExploreConfig
	// ExploreResult reports an exhaustive exploration.
	ExploreResult = mc.ExploreResult
	// ProductResult reports a lockstep two-run exploration.
	ProductResult = mc.ProductResult
	// BoundedReport summarizes a Definition-2 boundedness check.
	BoundedReport = mc.BoundedReport
	// BoundedConfig controls a boundedness check.
	BoundedConfig = mc.BoundedConfig
)

// Explore exhaustively expands every environment choice of (spec, input,
// kind) up to a bound, checking safety in every reachable state.
func Explore(spec Spec, input Seq, kind ChannelKind, cfg ExploreConfig) (*ExploreResult, error) {
	return mc.Explore(spec, input, kind, cfg)
}

// RefuteSafety searches the synchronized product of two runs (inputs x1,
// x2) for receiver-indistinguishable points whose shared output violates
// safety for one input — the paper's Lemma 1/3 adversary, executable.
func RefuteSafety(spec Spec, x1, x2 Seq, kind ChannelKind, cfg ExploreConfig) (*ProductResult, error) {
	return mc.Refute(spec, x1, x2, kind, cfg)
}

// CheckBounded evaluates Definition 2 (or its weak §5 variant) by
// sampled-point recovery search.
func CheckBounded(spec Spec, input Seq, kind ChannelKind, cfg BoundedConfig) (*BoundedReport, error) {
	return mc.CheckBounded(spec, input, kind, cfg)
}

// Knowledge analysis (§2.3).
type (
	// KnowledgeAnalysis indexes receiver views by the inputs that can
	// produce them, supporting K_R queries.
	KnowledgeAnalysis = epistemic.Analysis
	// KnowledgeConfig bounds a knowledge exploration.
	KnowledgeConfig = epistemic.Config
)

// AnalyzeKnowledge explores all runs of spec over the candidate inputs
// and returns the view-class index for K_R queries.
func AnalyzeKnowledge(spec Spec, inputs []Seq, kind ChannelKind, cfg KnowledgeConfig) (*KnowledgeAnalysis, error) {
	return epistemic.Analyze(spec, inputs, kind, cfg)
}

// LearnTimes drives one run of spec on input with adv and returns, for
// each i, the paper's t_i relative to the analysis: the first step at
// which R knows x_1..x_i (entries are -1 beyond the explored horizon).
func LearnTimes(a *KnowledgeAnalysis, spec Spec, input Seq, kind ChannelKind, adv Adversary, maxSteps int) ([]int, error) {
	return epistemic.LearnTimes(a, spec, input, kind, adv, maxSteps)
}

// Fault injection and soak campaigns (the robustness harness; see
// cmd/stpsoak for the CLI and docs/PAPER-MAP.md for the in-model /
// out-of-model classification).
type (
	// FaultPlan is a composable bundle of fault injections: burst drops,
	// partition-then-heal windows, within-alphabet corruption, and
	// crash-restarts of either process.
	FaultPlan = faults.Plan
	// SoakCase is one campaign cell: protocol × channel × adversary ×
	// fault plan, seeded.
	SoakCase = soak.Case
	// SoakConfig bounds every run of a campaign (steps, progress
	// deadline, wall clock, workers, shrink budget).
	SoakConfig = soak.Config
	// SoakCampaign is a named batch of cases.
	SoakCampaign = soak.Campaign
	// SoakReport is the JSON campaign artifact.
	SoakReport = soak.Report
	// SoakRunReport is the audited outcome of one case.
	SoakRunReport = soak.RunReport
	// SoakCounterexample is a captured, ddmin-shrunk failing trace.
	SoakCounterexample = soak.Counterexample
)

// NewFaultPlan returns an empty (fault-free) plan; chain its With*
// methods to add injections.
func NewFaultPlan(name string) *FaultPlan { return faults.NewPlan(name) }

// FaultPreset builds one of the stock fault plans by name (see
// FaultPresetNames).
func FaultPreset(name string) (*FaultPlan, error) { return faults.Preset(name) }

// FaultPresetNames lists the stock fault-plan names.
func FaultPresetNames() []string { return faults.PresetNames() }

// StandardSoak returns the full fault-injection campaign: the protocol
// zoo × channel kinds × adversaries × fault plans, runsPerCell seeds per
// cell.
func StandardSoak(seed int64, runsPerCell int) *SoakCampaign {
	return soak.StandardCampaign(seed, runsPerCell)
}

// SmokeSoak returns the small CI campaign (seconds, not minutes).
func SmokeSoak(seed int64) *SoakCampaign { return soak.SmokeCampaign(seed) }

// RunSoakCase executes a single campaign cell under cfg.
func RunSoakCase(c SoakCase, cfg SoakConfig) SoakRunReport { return soak.RunCase(c, cfg) }

// Monte-Carlo evaluation (§6 outlook).
type (
	// MonteCarloConfig controls a probabilistic campaign.
	MonteCarloConfig = prob.Config
	// MonteCarloEstimate tallies violation/completion rates.
	MonteCarloEstimate = prob.Estimate
)

// MonteCarlo estimates the probability that (spec, input, kind) violates
// safety or fails to complete under seeded random schedules.
func MonteCarlo(spec Spec, input Seq, kind ChannelKind, cfg MonteCarloConfig) (MonteCarloEstimate, error) {
	return prob.Run(spec, input, kind, cfg)
}
