package seqtx_test

import (
	"testing"

	"seqtx"
	"seqtx/internal/trace"
)

func TestTransmitQuickstart(t *testing.T) {
	t.Parallel()
	spec := seqtx.TightProtocol(4)
	input := seqtx.Sequence(2, 0, 3, 1)
	res, err := seqtx.Transmit(spec, input, seqtx.ChannelDup, seqtx.FairRandom(42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(input) {
		t.Fatalf("Output = %s, want %s", res.Output, input)
	}
	if res.SafetyViolation != nil {
		t.Fatal(res.SafetyViolation)
	}
}

func TestAlphaFacade(t *testing.T) {
	t.Parallel()
	a, err := seqtx.Alpha(5)
	if err != nil {
		t.Fatal(err)
	}
	if a != 326 {
		t.Errorf("Alpha(5) = %d, want 326", a)
	}
	if got := len(seqtx.RepetitionFreeSequences(3)); got != 16 {
		t.Errorf("len(RepetitionFreeSequences(3)) = %d, want 16", got)
	}
}

func TestAllProtocolConstructors(t *testing.T) {
	t.Parallel()
	input := seqtx.Sequence(0, 1)
	cases := []struct {
		name string
		spec seqtx.Spec
		kind seqtx.ChannelKind
	}{
		{"tight", seqtx.TightProtocol(2), seqtx.ChannelDup},
		{"afwz", seqtx.AFWZProtocol(2), seqtx.ChannelDel},
		{"hybrid", seqtx.HybridProtocol(2, 4), seqtx.ChannelDel},
		{"abp", seqtx.ABProtocol(2), seqtx.ChannelFIFO},
		{"stenning", seqtx.StenningProtocol(), seqtx.ChannelDel},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res, err := seqtx.Transmit(c.spec, input, c.kind, seqtx.FairRoundRobin())
			if err != nil {
				t.Fatal(err)
			}
			if !res.OutputComplete || res.SafetyViolation != nil {
				t.Fatalf("complete=%v violation=%v output=%s", res.OutputComplete, res.SafetyViolation, res.Output)
			}
		})
	}
}

func TestEncodedProtocolFacade(t *testing.T) {
	t.Parallel()
	x, err := seqtx.NewSeqSet(seqtx.Sequence(0, 0), seqtx.Sequence(1))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := seqtx.EncodedProtocol(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := seqtx.Transmit(spec, seqtx.Sequence(0, 0), seqtx.ChannelDel, seqtx.FairRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatalf("incomplete: %s", res.Output)
	}
}

func TestRefuteSafetyFacade(t *testing.T) {
	t.Parallel()
	naive, err := seqtx.NaiveProtocol(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := seqtx.RefuteSafety(naive, seqtx.Sequence(0, 1), seqtx.Sequence(0, 1, 0),
		seqtx.ChannelDup, seqtx.ExploreConfig{MaxDepth: 12, MaxStates: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation found for the naive protocol")
	}
}

func TestExploreFacade(t *testing.T) {
	t.Parallel()
	res, err := seqtx.Explore(seqtx.TightProtocol(2), seqtx.Sequence(0, 1), seqtx.ChannelDup,
		seqtx.ExploreConfig{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("tight protocol violated safety: %v", res.Violation)
	}
}

func TestCheckBoundedFacade(t *testing.T) {
	t.Parallel()
	rep, err := seqtx.CheckBounded(seqtx.TightProtocol(3), seqtx.Sequence(1, 2, 0),
		seqtx.ChannelDel, seqtx.BoundedConfig{Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded() {
		t.Fatalf("tight protocol not bounded: %+v", rep)
	}
}

func TestKnowledgeFacade(t *testing.T) {
	t.Parallel()
	spec := seqtx.TightProtocol(2)
	a, err := seqtx.AnalyzeKnowledge(spec, seqtx.RepetitionFreeSequences(2), seqtx.ChannelDup,
		seqtx.KnowledgeConfig{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, knows, kerr := a.Knows(trace.View{}, 1); kerr != nil || knows {
		t.Fatalf("initial knowledge: knows=%v err=%v", knows, kerr)
	}
	times, err := seqtx.LearnTimes(a, spec, seqtx.Sequence(0), seqtx.ChannelDup,
		seqtx.FairRoundRobin(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 1 || times[0] < 0 {
		t.Fatalf("times = %v", times)
	}
}

func TestAdversaryConstructorsHaveNames(t *testing.T) {
	t.Parallel()
	for _, adv := range []seqtx.Adversary{
		seqtx.FairRoundRobin(), seqtx.FairRandom(1), seqtx.Replayer(1, 2),
		seqtx.Dropper(1, 2), seqtx.Withholder(5),
	} {
		if adv.Name() == "" {
			t.Error("adversary with empty name")
		}
	}
}

func TestSlidingWindowFacades(t *testing.T) {
	t.Parallel()
	input := seqtx.Sequence(0, 1, 0, 1)
	for _, mk := range []func(int, int) (seqtx.Spec, error){
		seqtx.GoBackNProtocol, seqtx.SelRepeatProtocol,
	} {
		spec, err := mk(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := seqtx.Transmit(spec, input, seqtx.ChannelFIFO, seqtx.FairRoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		if !res.OutputComplete || res.SafetyViolation != nil {
			t.Fatalf("%s: complete=%v violation=%v", spec.Name, res.OutputComplete, res.SafetyViolation)
		}
	}
	if _, err := seqtx.GoBackNProtocol(2, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMonteCarloFacade(t *testing.T) {
	t.Parallel()
	spec, err := seqtx.ModseqProtocol(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	est, err := seqtx.MonteCarlo(spec, seqtx.Sequence(0, 1, 0), seqtx.ChannelDup,
		seqtx.MonteCarloConfig{Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 10 || est.Violations != 0 {
		t.Fatalf("estimate = %+v", est)
	}
}
